// Package faultnet provides deterministic fault injection for
// net.Conn-based transports. A seeded Injector mints connection
// wrappers that drop, delay, duplicate, truncate, or corrupt outgoing
// frames (one Write call = one frame, matching the protocol package's
// one-JSON-value-per-Send framing) according to a reproducible
// schedule: the fault fate of every frame is a pure function of the
// injector's Plan, the connection key, and the frame's ordinal. Two
// runs with the same seed and keys inject exactly the same faults,
// which is what lets the chaos suite assert byte-identical round
// reports under 20%+ fault rates.
//
// Only the write side is faulted. Reads pass through untouched, so
// wrapping one endpoint of a conversation perturbs exactly one
// direction and the two endpoints' fault schedules never interleave —
// a worker's frame fates depend only on its own key, not on how the
// platform's replies were scheduled.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadPlan reports an invalid fault plan.
var ErrBadPlan = errors.New("faultnet: invalid fault plan")

// Plan sets per-frame fault probabilities. At most one fault fires per
// frame: the rates partition [0,1) cumulatively, so they must each be
// non-negative and sum to at most 1.
type Plan struct {
	// Seed roots every connection's schedule; connections with
	// different keys draw from independent streams derived from it.
	Seed int64
	// DropRate silently discards the frame: the writer sees success,
	// the peer sees nothing (models a lost datagram / half-open conn).
	DropRate float64
	// DelayRate stalls the frame by a uniform duration in (0, Delay]
	// before delivering it intact.
	DelayRate float64
	// Delay is the maximum injected stall; defaults to 25ms.
	Delay time.Duration
	// DuplicateRate delivers the frame twice back to back.
	DuplicateRate float64
	// TruncateRate delivers a strict prefix of the frame and then
	// closes the connection (models a cut mid-frame).
	TruncateRate float64
	// CorruptRate flips one byte of the frame before delivery.
	CorruptRate float64
}

func (p Plan) validate() error {
	sum := 0.0
	for _, r := range []float64{p.DropRate, p.DelayRate, p.DuplicateRate, p.TruncateRate, p.CorruptRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("%w: rate %v outside [0,1]", ErrBadPlan, r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("%w: rates sum to %v > 1", ErrBadPlan, sum)
	}
	return nil
}

// Injector mints fault-injecting connection wrappers that share a Plan.
// Safe for concurrent use; every wrapped connection owns an
// independent deterministic schedule.
type Injector struct {
	plan Plan
}

// New validates the plan and returns an Injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	if plan.Delay <= 0 {
		plan.Delay = 25 * time.Millisecond
	}
	return &Injector{plan: plan}, nil
}

// Conn wraps raw with the injector's fault schedule. key selects the
// deterministic stream: the same (Seed, key) pair always yields the
// same per-frame fates, so callers that want reproducibility across
// runs should key by stable identity (e.g. "worker-07#attempt-2"), not
// by ephemeral addresses.
func (in *Injector) Conn(raw net.Conn, key string) net.Conn {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	seed := in.plan.Seed ^ int64(h.Sum64())
	return &conn{Conn: raw, plan: in.plan, rng: rand.New(rand.NewSource(seed))}
}

// fault identifies the injected behavior for one frame.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDelay
	faultDuplicate
	faultTruncate
	faultCorrupt
)

// conn injects write-side faults; reads and deadlines pass through.
type conn struct {
	net.Conn
	plan Plan

	mu  sync.Mutex
	rng *rand.Rand
}

// draw consumes exactly two variates per frame — the fault selector
// and its magnitude — keeping the stream aligned regardless of which
// fault fires, so schedules stay deterministic frame by frame.
func (c *conn) draw() (fault, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.rng.Float64()
	mag := c.rng.Float64()
	p := c.plan
	cut := p.DropRate
	if u < cut {
		return faultDrop, mag
	}
	if cut += p.DelayRate; u < cut {
		return faultDelay, mag
	}
	if cut += p.DuplicateRate; u < cut {
		return faultDuplicate, mag
	}
	if cut += p.TruncateRate; u < cut {
		return faultTruncate, mag
	}
	if cut += p.CorruptRate; u < cut {
		return faultCorrupt, mag
	}
	return faultNone, mag
}

// Write delivers one frame subject to the schedule.
func (c *conn) Write(p []byte) (int, error) {
	switch f, mag := c.draw(); f {
	case faultDrop:
		// Lie about success: the frame vanishes in flight.
		return len(p), nil
	case faultDelay:
		d := time.Duration(mag * float64(c.plan.Delay))
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
		return c.Conn.Write(p)
	case faultDuplicate:
		n, err := c.Conn.Write(p)
		if err != nil {
			return n, err
		}
		_, _ = c.Conn.Write(p)
		return len(p), nil
	case faultTruncate:
		n := int(mag * float64(len(p)))
		if n >= len(p) {
			n = len(p) - 1
		}
		if n > 0 {
			_, _ = c.Conn.Write(p[:n])
		}
		_ = c.Conn.Close()
		return n, fmt.Errorf("faultnet: frame truncated at %d of %d bytes", n, len(p))
	case faultCorrupt:
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[int(mag*float64(len(q)))%len(q)] ^= 0xff
		}
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

// ContextDialer is the dialing seam faultnet plugs into; *net.Dialer
// implements it.
type ContextDialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// Dialer dials through Base and wraps each new connection with a fault
// schedule keyed by Key plus the attempt ordinal, so a retrying client
// sees fresh — but still reproducible — fault draws on every attempt.
// It implements the protocol package's ContextDialer seam.
type Dialer struct {
	// Injector supplies the fault schedules; required.
	Injector *Injector
	// Key is the stable identity prefix, typically the worker ID.
	Key string
	// Base performs the real dial; nil uses a plain net.Dialer.
	Base ContextDialer

	attempts atomic.Int64
}

// DialContext dials and wraps the connection.
func (d *Dialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	base := d.Base
	if base == nil {
		base = &net.Dialer{}
	}
	raw, err := base.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	n := d.attempts.Add(1)
	return d.Injector.Conn(raw, fmt.Sprintf("%s#%d", d.Key, n)), nil
}

// Listener wraps accepted connections with fault schedules keyed by
// accept ordinal. Because accept order is timing-dependent, this is
// deterministic only when connections arrive in a deterministic order;
// prefer Dialer-side injection when reproducibility matters.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in      *Injector
	accepts atomic.Int64
}

func (l *listener) Accept() (net.Conn, error) {
	raw, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	n := l.accepts.Add(1)
	return l.in.Conn(raw, fmt.Sprintf("accept#%d", n)), nil
}
