package faultnet

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// sink records every write delivered to the "network" without blocking.
type sink struct {
	mu     sync.Mutex
	frames [][]byte
	closed bool
}

func (s *sink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, append([]byte(nil), p...))
	return len(p), nil
}

// sinkConn adapts sink to net.Conn.
type sinkConn struct {
	net.Conn // nil; only Write/Close are exercised
	s        *sink
}

func (c sinkConn) Write(p []byte) (int, error) { return c.s.Write(p) }
func (c sinkConn) Close() error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	c.s.closed = true
	return nil
}

// deliver pushes n numbered frames through a wrapped conn and returns
// what reached the sink plus the per-frame write errors.
func deliver(t *testing.T, in *Injector, key string, n int) (*sink, []error) {
	t.Helper()
	s := &sink{}
	conn := in.Conn(sinkConn{s: s}, key)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		_, errs[i] = conn.Write([]byte{byte(i), byte(i >> 8), 0xAA})
	}
	return s, errs
}

func TestPlanValidation(t *testing.T) {
	if _, err := New(Plan{DropRate: -0.1}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("negative rate: got %v", err)
	}
	if _, err := New(Plan{DropRate: 0.6, DelayRate: 0.6}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("rates summing over 1: got %v", err)
	}
	if _, err := New(Plan{DropRate: 0.5, CorruptRate: 0.5}); err != nil {
		t.Errorf("rates summing to exactly 1 should be valid: %v", err)
	}
}

func TestZeroPlanIsPassthrough(t *testing.T) {
	in, err := New(Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, errs := deliver(t, in, "k", 50)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if len(s.frames) != 50 {
		t.Fatalf("delivered %d of 50 frames", len(s.frames))
	}
}

func TestDeterministicPerSeedAndKey(t *testing.T) {
	plan := Plan{Seed: 42, DropRate: 0.3, DuplicateRate: 0.2, CorruptRate: 0.2, TruncateRate: 0.1}
	run := func() [][]byte {
		in, err := New(plan)
		if err != nil {
			t.Fatal(err)
		}
		s, _ := deliver(t, in, "worker-07#1", 40)
		return s.frames
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("frame counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d differs: %x vs %x", i, a[i], b[i])
		}
	}
	// A different key must (with these rates, over 40 frames) diverge.
	in, err := New(plan)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := deliver(t, in, "worker-08#1", 40)
	same := len(c.frames) == len(a)
	if same {
		for i := range a {
			if !bytes.Equal(a[i], c.frames[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different keys produced identical schedules")
	}
}

func TestDropRateDrops(t *testing.T) {
	in, err := New(Plan{Seed: 7, DropRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, errs := deliver(t, in, "k", 10)
	if len(s.frames) != 0 {
		t.Fatalf("%d frames leaked through a 100%% drop plan", len(s.frames))
	}
	for _, err := range errs {
		if err != nil {
			t.Fatalf("drop must report success to the writer, got %v", err)
		}
	}
}

func TestDuplicateDelivers(t *testing.T) {
	in, err := New(Plan{Seed: 7, DuplicateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := deliver(t, in, "k", 5)
	if len(s.frames) != 10 {
		t.Fatalf("delivered %d frames, want 10 (each doubled)", len(s.frames))
	}
	if !bytes.Equal(s.frames[0], s.frames[1]) {
		t.Error("duplicate pair differs")
	}
}

func TestTruncateClosesAndErrors(t *testing.T) {
	in, err := New(Plan{Seed: 7, TruncateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{}
	conn := in.Conn(sinkConn{s: s}, "k")
	if _, err := conn.Write([]byte("hello world")); err == nil {
		t.Error("truncate must surface a write error")
	}
	if !s.closed {
		t.Error("truncate must close the connection")
	}
	for _, f := range s.frames {
		if len(f) >= len("hello world") {
			t.Errorf("truncated frame has %d bytes, want a strict prefix", len(f))
		}
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	in, err := New(Plan{Seed: 7, CorruptRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("abcdefgh")
	s := &sink{}
	conn := in.Conn(sinkConn{s: s}, "k")
	if _, err := conn.Write(append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	if len(s.frames) != 1 {
		t.Fatalf("delivered %d frames", len(s.frames))
	}
	diff := 0
	for i := range orig {
		if s.frames[0][i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
}

func TestDelayStallsButDelivers(t *testing.T) {
	in, err := New(Plan{Seed: 7, DelayRate: 1, Delay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := &sink{}
	conn := in.Conn(sinkConn{s: s}, "k")
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := conn.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.frames) != 5 {
		t.Fatalf("delivered %d of 5 delayed frames", len(s.frames))
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Errorf("delays exceeded the plan's bound: %v", time.Since(start))
	}
}

// TestDialerWrapsRealConnections runs a tiny echo exchange over
// loopback TCP through a fault-free dialer to prove the plumbing holds
// end to end for reads and writes.
func TestDialerWrapsRealConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = io.Copy(c, c)
	}()

	in, err := New(Plan{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := &Dialer{Injector: in, Key: "w"}
	conn, err := d.DialContext(context.Background(), "tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("echo mismatch: %q", buf)
	}
}
