package faultnet

import (
	"errors"
	"testing"
)

func TestPartitionPlanValidate(t *testing.T) {
	for _, rate := range []float64{0, 0.5, 1} {
		if err := (PartitionPlan{KillRate: rate}).Validate(); err != nil {
			t.Fatalf("rate %v rejected: %v", rate, err)
		}
	}
	for _, rate := range []float64{-0.1, 1.1} {
		if err := (PartitionPlan{KillRate: rate}).Validate(); !errors.Is(err, ErrBadPlan) {
			t.Fatalf("rate %v: %v, want ErrBadPlan", rate, err)
		}
	}
}

func TestPartitionPlanDeterministic(t *testing.T) {
	plan := PartitionPlan{Seed: 42, KillRate: 0.3}
	for round := 0; round < 8; round++ {
		for part := 0; part < 8; part++ {
			if plan.Kills(round, part) != plan.Kills(round, part) {
				t.Fatalf("plan not deterministic at (%d,%d)", round, part)
			}
		}
	}
	// A different seed must produce a different schedule somewhere.
	other := PartitionPlan{Seed: 43, KillRate: 0.3}
	same := true
	for round := 0; round < 16 && same; round++ {
		for part := 0; part < 16; part++ {
			if plan.Kills(round, part) != other.Kills(round, part) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical kill schedules")
	}
}

func TestPartitionPlanRateBounds(t *testing.T) {
	never := PartitionPlan{Seed: 1, KillRate: 0}
	always := PartitionPlan{Seed: 1, KillRate: 1}
	invalid := PartitionPlan{Seed: 1, KillRate: 1.5}
	for round := 0; round < 16; round++ {
		for part := 0; part < 16; part++ {
			if never.Kills(round, part) {
				t.Fatalf("rate 0 killed (%d,%d)", round, part)
			}
			if !always.Kills(round, part) {
				t.Fatalf("rate 1 spared (%d,%d)", round, part)
			}
			if invalid.Kills(round, part) {
				t.Fatalf("invalid rate killed (%d,%d), want no-op", round, part)
			}
		}
	}
}

// TestPartitionPlanRateRoughlyHolds: across many (round, partition)
// coordinates the empirical kill fraction tracks the configured rate.
func TestPartitionPlanRateRoughlyHolds(t *testing.T) {
	plan := PartitionPlan{Seed: 9, KillRate: 0.25}
	kills, total := 0, 0
	for round := 0; round < 100; round++ {
		for part := 0; part < 100; part++ {
			total++
			if plan.Kills(round, part) {
				kills++
			}
		}
	}
	frac := float64(kills) / float64(total)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("empirical kill rate %v far from configured 0.25", frac)
	}
}
