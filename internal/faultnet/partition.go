package faultnet

import (
	"fmt"
	"math/rand"
)

// PartitionPlan is the shard-layer chaos schedule: a deterministic rule
// for which auction partitions crash mid-round. Kills has the
// shard.KillFunc shape, so the plan plugs straight into
// shard.Config.Chaos (and protocol.PlatformConfig.ShardChaos): the same
// (Seed, KillRate) pair always fails the same partitions in the same
// rounds, which keeps chaos experiments replayable.
type PartitionPlan struct {
	// Seed roots the kill schedule; each (round, partition) pair draws
	// from its own stream derived from it.
	Seed int64
	// KillRate is the independent probability in [0,1] that a given
	// partition dies in a given round.
	KillRate float64
}

// Validate checks the plan's rate.
func (p PartitionPlan) Validate() error {
	if p.KillRate < 0 || p.KillRate > 1 {
		return fmt.Errorf("%w: kill rate %v outside [0,1]", ErrBadPlan, p.KillRate)
	}
	return nil
}

// Kills reports whether the plan fails the given partition in the
// given round. Deterministic in (Seed, round, partition); an invalid
// rate kills nothing.
func (p PartitionPlan) Kills(round, partition int) bool {
	if p.KillRate <= 0 || p.KillRate > 1 {
		return false
	}
	// Mix the coordinates into an independent stream seed with a
	// splitmix64 finalizer, mirroring how protocol.RoundSeed derives
	// round streams.
	z := uint64(p.Seed) ^ (uint64(round)+1)*0x9e3779b97f4a7c15 ^ (uint64(partition)+1)*0xd1342543de82ef95
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z))).Float64() < p.KillRate
}
