package experiment

import "sync"

// runIndexed runs fn(i) for every i in [0, n) on up to parallelism
// goroutines. Callers keep determinism by pre-deriving any randomness
// (stats.Seeder seeds drawn in the sequential order) and writing each
// job's output into index-addressed storage, then aggregating in index
// order after the pool drains — so results are byte-identical to the
// sequential loop regardless of scheduling. Values of parallelism below
// 2 run the plain loop.
func runIndexed(n, parallelism int, fn func(int)) {
	if parallelism > n {
		parallelism = n
	}
	if parallelism < 2 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// The channel is buffered to n and filled before the workers spawn:
	// an unbuffered channel would serialize the producer against worker
	// pickup, leaving workers idle between jobs exactly when the jobs
	// are short.
	work := make(chan int, n)
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	wg.Wait()
}
