package experiment

import (
	"runtime"
	"testing"
	"time"

	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/workload"
)

// TestSweepBuildsOneAuctionPerPointPerRule is the regression test for
// the double-build bug: runSweepInstance used to construct the DP
// auction twice per sweep point (once inside generateFeasible to probe
// feasibility, once more "to time construction alone"). Now the probe
// build is the measured build, so the sweep must count exactly one
// mcs_core_auctions_total increment per (point, instance) per selection
// rule — DP-hSRC greedy plus the static baseline.
func TestSweepBuildsOneAuctionPerPointPerRule(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{Seed: 7, Scale: 0.08, Instances: 2, Parallelism: 2, Telemetry: reg}
	xs := []int{200, 260, 320}
	if _, err := paymentSweep("figX", "t", "x", xs, workload.SettingIV, false, cfg); err != nil {
		t.Fatal(err)
	}
	const rules = 2 // greedy DP auction + static baseline
	want := int64(len(xs) * cfg.Instances * rules)
	if got := reg.Counter("mcs_core_auctions_total", "").Value(); got != want {
		t.Fatalf("auctions_total = %d, want %d (one build per point-instance per rule)", got, want)
	}
}

// TestPaymentSweepParallelSpeedup asserts the sweep pool actually pays
// for itself once the inner builds stop competing with it: at
// parallelism 4 the sweep must run at least 2x faster than sequential.
// Skipped on machines without 4 cores, where the speedup cannot exist.
func TestPaymentSweepParallelSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4; parallel speedup not measurable", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	mk := func(parallelism int) Config {
		return Config{Seed: 7, Scale: 0.2, Instances: 2, Parallelism: parallelism}
	}
	xs := []int{260, 300, 340, 380, 420, 460, 500}
	sweep := func(parallelism int) time.Duration {
		start := time.Now()
		if _, err := paymentSweep("figX", "t", "x", xs, workload.SettingIV, false, mk(parallelism)); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	sweep(1) // warm caches so the timed runs compare like for like
	seq := sweep(1)
	par := sweep(4)
	if par > seq/2 {
		t.Fatalf("parallel sweep %v vs sequential %v: speedup %.2fx < 2x at parallelism 4",
			par, seq, float64(seq)/float64(par))
	}
}
