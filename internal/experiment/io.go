package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/dphsrc/dphsrc/internal/plot"
)

// WriteFigure writes a figure's SVG, tidy CSV and notes into dir using
// the figure ID as the base filename. It returns the files written.
func WriteFigure(dir string, f FigureResult) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: creating %s: %w", dir, err)
	}
	var written []string

	chart := f.Chart()
	svg, err := chart.SVG()
	if err != nil {
		return nil, fmt.Errorf("experiment: rendering %s: %w", f.ID, err)
	}
	svgPath := filepath.Join(dir, f.ID+".svg")
	if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
		return nil, err
	}
	written = append(written, svgPath)

	csvPath := filepath.Join(dir, f.ID+".csv")
	var sb strings.Builder
	if err := plot.WriteSeriesCSV(&sb, f.Series); err != nil {
		return nil, err
	}
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		return nil, err
	}
	written = append(written, csvPath)

	if len(f.Notes) > 0 {
		notesPath := filepath.Join(dir, f.ID+".notes.txt")
		if err := os.WriteFile(notesPath, []byte(strings.Join(f.Notes, "\n")+"\n"), 0o644); err != nil {
			return nil, err
		}
		written = append(written, notesPath)
	}
	return written, nil
}

// WriteTable2 writes Table II's two blocks as text and CSV files.
func WriteTable2(dir string, t Table2Result) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: creating %s: %w", dir, err)
	}
	tblI, tblII := t.Render()
	var written []string
	txt := "Table II (Setting I)\n" + tblI.String() + "\nTable II (Setting II)\n" + tblII.String()
	if len(t.Notes) > 0 {
		txt += "\nNotes:\n  " + strings.Join(t.Notes, "\n  ") + "\n"
	}
	txtPath := filepath.Join(dir, "table2.txt")
	if err := os.WriteFile(txtPath, []byte(txt), 0o644); err != nil {
		return nil, err
	}
	written = append(written, txtPath)

	// Fixed emission order: iterating a map here would make the
	// returned file list (and any downstream log of it) differ run to
	// run (mcs-lint MCS-DET003).
	for _, out := range []struct {
		name string
		tbl  plot.Table
	}{
		{"table2_setting1.csv", tblI},
		{"table2_setting2.csv", tblII},
	} {
		var sb strings.Builder
		if err := out.tbl.WriteCSV(&sb); err != nil {
			return nil, err
		}
		p := filepath.Join(dir, out.name)
		if err := os.WriteFile(p, []byte(sb.String()), 0o644); err != nil {
			return nil, err
		}
		written = append(written, p)
	}
	return written, nil
}

// WriteFigure5 writes Figure 5's two SVG charts plus its tidy CSV.
func WriteFigure5(dir string, f Figure5Result) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: creating %s: %w", dir, err)
	}
	var written []string
	payment, leakage := f.Charts()
	// Fixed emission order, not map order (mcs-lint MCS-DET003).
	for _, out := range []struct {
		name  string
		chart plot.Chart
	}{
		{"fig5_payment.svg", payment},
		{"fig5_leakage.svg", leakage},
	} {
		svg, err := out.chart.SVG()
		if err != nil {
			return nil, err
		}
		p := filepath.Join(dir, out.name)
		if err := os.WriteFile(p, []byte(svg), 0o644); err != nil {
			return nil, err
		}
		written = append(written, p)
	}
	var sb strings.Builder
	if err := plot.WriteSeriesCSV(&sb, f.Series()); err != nil {
		return nil, err
	}
	csvPath := filepath.Join(dir, "fig5.csv")
	if err := os.WriteFile(csvPath, []byte(sb.String()), 0o644); err != nil {
		return nil, err
	}
	written = append(written, csvPath)
	if len(f.Notes) > 0 {
		notesPath := filepath.Join(dir, "fig5.notes.txt")
		if err := os.WriteFile(notesPath, []byte(strings.Join(f.Notes, "\n")+"\n"), 0o644); err != nil {
			return nil, err
		}
		written = append(written, notesPath)
	}
	return written, nil
}
