package experiment

import (
	"fmt"
	"math/rand"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/plot"
	"github.com/dphsrc/dphsrc/internal/stats"
	"github.com/dphsrc/dphsrc/internal/workload"
)

// Figure5Epsilons are the privacy budgets swept in the paper's Figure 5.
var Figure5Epsilons = []float64{0.25, 0.5, 1, 2, 5, 10, 20, 45, 100, 140, 200, 300, 500, 700, 1000}

// Figure5Result carries the two curves of Figure 5 on their shared
// epsilon axis.
type Figure5Result struct {
	Epsilons []float64
	// Payment[i] is the platform's average total payment at Epsilons[i].
	Payment []float64
	// Leakage[i] is the worst-case KL-divergence privacy leakage
	// (Definition 8) over sampled adversarial single-bid perturbations
	// at Epsilons[i].
	Leakage []float64
	Notes   []string
}

// Figure5 reproduces Figure 5: the trade-off between the platform's
// expected total payment and the privacy leakage as the privacy budget
// epsilon grows. For each epsilon, one Setting-IV-family instance is
// built; the payment is the exact expected payment, and the leakage is
// the worst-case KL divergence over adversarial single-bid
// perturbations with the price support held fixed (Definition 8).
func Figure5(cfg Config) (Figure5Result, error) {
	cfg = cfg.withDefaults()
	seeder := stats.NewSeeder(cfg.Seed)
	r := seeder.NewRand()

	// One base instance reused across the epsilon sweep so the curves
	// vary only with epsilon, as in the paper.
	// The probe auction is discarded (the sweep builds its own below
	// with the fixed support), so it stays uninstrumented; this build
	// happens before the pool fans out, so it may use the full budget.
	params := workload.SettingIV(200).Scaled(cfg.Scale)
	inst, _, _, err := generateFeasible(params, r, buildOptions{parallelism: cfg.Parallelism})
	if err != nil {
		return Figure5Result{}, err
	}
	support := feasibleSupport(inst)
	if len(support) == 0 {
		return Figure5Result{}, ErrNoFeasibleInstance
	}

	// Leakage is a worst-case notion (Definition 8 compares two specific
	// adjacent profiles; DP bounds the worst pair), so the perturbations
	// are adversarial: a sampled worker's bid jumps to the opposite cost
	// extreme, maximally shifting her candidate-set membership, and the
	// reported leakage is the maximum over the sample. The perturbed
	// workers are fixed across the epsilon sweep so the curves vary only
	// with epsilon.
	const perturbations = 12
	perturbed := make([]core.Instance, perturbations)
	for p := range perturbed {
		perturbed[p] = perturbExtremeBid(inst, r)
	}

	// Winner sets depend on the bids and the fixed support but never on
	// epsilon, so each of the 1+perturbations auctions is constructed
	// exactly once and every sweep point derives from it by Reweight
	// (mechanism log-weights only). The gain-evaluation telemetry stays
	// flat across the sweep; only mcs_core_reweights_total advances.
	build := func(base core.Instance) (*core.Auction, error) {
		cur := base.Clone()
		cur.Epsilon = Figure5Epsilons[0]
		return core.New(cur, core.WithPriceSet(support),
			core.WithParallelism(cfg.Parallelism), core.WithTelemetry(cfg.Telemetry),
			core.WithEventLog(cfg.Events))
	}
	baseA, err := build(inst)
	if err != nil {
		return Figure5Result{}, fmt.Errorf("experiment fig5 base build: %w", err)
	}
	perturbedA := make([]*core.Auction, perturbations)
	for p := range perturbed {
		if perturbedA[p], err = build(perturbed[p]); err != nil {
			return Figure5Result{}, fmt.Errorf("experiment fig5 perturbation: %w", err)
		}
	}

	res := Figure5Result{
		Epsilons: Figure5Epsilons,
		Payment:  make([]float64, len(Figure5Epsilons)),
		Leakage:  make([]float64, len(Figure5Epsilons)),
	}
	errs := make([]error, len(Figure5Epsilons))
	pt := startProgress(cfg.Events, "fig5", len(Figure5Epsilons))
	runIndexed(len(Figure5Epsilons), cfg.Parallelism, func(i int) {
		eps := Figure5Epsilons[i]
		a, err := baseA.Reweight(eps)
		if err != nil {
			errs[i] = fmt.Errorf("experiment fig5 at eps=%v: %w", eps, err)
			return
		}
		res.Payment[i] = a.ExpectedPayment()

		worst := 0.0
		for p := range perturbedA {
			b, err := perturbedA[p].Reweight(eps)
			if err != nil {
				errs[i] = fmt.Errorf("experiment fig5 perturbation at eps=%v: %w", eps, err)
				return
			}
			leak, err := mechanism.MeasureLeakage(a.Mechanism(), b.Mechanism())
			if err != nil {
				errs[i] = err
				return
			}
			if leak.KL > worst {
				worst = leak.KL
			}
		}
		res.Leakage[i] = worst
		pt.jobDone()
	})
	pt.done()
	for _, err := range errs {
		if err != nil {
			return Figure5Result{}, err
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("leakage is the worst case over %d adversarial single-bid perturbations (bid moved to the opposite cost extreme)", perturbations),
		"price support held fixed across adjacent profiles (Algorithm 1 takes P as input)",
		"winner sets constructed once per profile and shared across the epsilon sweep (Auction.Reweight)")
	if cfg.Scale != 1 {
		res.Notes = append(res.Notes, fmt.Sprintf("instance sizes scaled by %.3g relative to Table I Setting IV", cfg.Scale))
	}
	return res, nil
}

// Charts renders Figure 5 as its two overlaid curves (payment and
// leakage), each returned as its own chart since the units differ.
func (f Figure5Result) Charts() (payment, leakage plot.Chart) {
	payment = plot.Chart{
		Title:  "Platform's average total payment vs privacy budget",
		XLabel: "epsilon",
		YLabel: "Platform's Average Total Payment",
		LogX:   true,
		Series: []plot.Series{{Name: "Platform's Average Total Payment", X: f.Epsilons, Y: f.Payment}},
	}
	leakage = plot.Chart{
		Title:  "Privacy leakage vs privacy budget",
		XLabel: "epsilon",
		YLabel: "Privacy Leakage (KL divergence)",
		LogX:   true,
		Series: []plot.Series{{Name: "Privacy Leakage", X: f.Epsilons, Y: f.Leakage}},
	}
	return payment, leakage
}

// Series returns both curves in tidy form for CSV export.
func (f Figure5Result) Series() []plot.Series {
	return []plot.Series{
		{Name: "Platform's Average Total Payment", X: f.Epsilons, Y: f.Payment},
		{Name: "Privacy Leakage", X: f.Epsilons, Y: f.Leakage},
	}
}

// feasibleSupport computes the paper's price set P for an instance: the
// feasible subset of its grid. Fixing this as the support for all
// adjacent profiles matches Algorithm 1's treatment of P as an input.
func feasibleSupport(inst core.Instance) []float64 {
	a, err := core.New(inst)
	if err != nil {
		return nil
	}
	return a.SupportPrices()
}

// perturbExtremeBid returns a copy of inst with one uniformly chosen
// worker's bid moved to whichever cost extreme is farther from her
// current bid — the single-bid change with the largest effect on her
// candidate-set membership across prices.
func perturbExtremeBid(inst core.Instance, r *rand.Rand) core.Instance {
	cp := inst.Clone()
	i := r.Intn(len(cp.Workers))
	mid := (inst.CMin + inst.CMax) / 2
	if cp.Workers[i].Bid >= mid {
		cp.Workers[i].Bid = inst.CMin
	} else {
		cp.Workers[i].Bid = inst.CMax
	}
	return cp
}
