package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dphsrc/dphsrc/internal/ilp"
	"github.com/dphsrc/dphsrc/internal/plot"
	"github.com/dphsrc/dphsrc/internal/stats"
	"github.com/dphsrc/dphsrc/internal/workload"
)

// Table2Row is one column of the paper's Table II: execution time of
// the DP-hSRC auction and the exact optimal algorithm at one sweep
// point.
type Table2Row struct {
	// Label names the sweep variable value ("N=80" or "K=20").
	Label string
	// DPSeconds is the wall-clock time to run the full DP-hSRC auction
	// (winner sets for every support price plus the price draw).
	DPSeconds float64
	// OptSeconds is the wall-clock time of the exact R_OPT computation.
	OptSeconds float64
	// OptProven is false when the solve budget expired first, in which
	// case OptSeconds is the budgeted time and the optimum is an
	// incumbent (reported as ">= budget" in rendering).
	OptProven bool
}

// Table2Result reproduces Table II: execution times for Setting I
// (varying N) and Setting II (varying K).
type Table2Result struct {
	SettingI  []Table2Row
	SettingII []Table2Row
	Notes     []string
}

// Table2 measures execution times across the paper's Table II sweep
// points: N in {80, 88, ..., 136} under Setting I and K in
// {20, 24, ..., 48} under Setting II. Points run on a bounded pool of
// cfg.Parallelism workers with seeds pre-derived in the sequential
// point order, so the instances measured (and thus the table structure)
// are identical to a sequential run; only the wall-clock timings —
// nondeterministic by nature — feel the co-scheduling.
func Table2(cfg Config) (Table2Result, error) {
	cfg = cfg.withDefaults()
	seeder := stats.NewSeeder(cfg.Seed)
	type point struct {
		label string
		p     workload.Params
		seed  int64
	}
	var pts []point
	for _, n := range rangeInts(80, 136, 8) {
		pts = append(pts, point{fmt.Sprintf("N=%d", n), workload.SettingI(n).Scaled(cfg.Scale), seeder.Next()})
	}
	numSettingI := len(pts)
	for _, k := range rangeInts(20, 48, 4) {
		pts = append(pts, point{fmt.Sprintf("K=%d", k), workload.SettingII(k).Scaled(cfg.Scale), seeder.Next()})
	}
	rows := make([]Table2Row, len(pts))
	errs := make([]error, len(pts))
	pt := startProgress(cfg.Events, "table2", len(pts))
	runIndexed(len(pts), cfg.Parallelism, func(i int) {
		rows[i], errs[i] = table2Point(pts[i].label, pts[i].p, cfg, pts[i].seed)
		pt.jobDone()
	})
	pt.done()
	for _, err := range errs {
		if err != nil {
			return Table2Result{}, err
		}
	}
	res := Table2Result{SettingI: rows[:numSettingI], SettingII: rows[numSettingI:]}
	if cfg.Scale != 1 {
		res.Notes = append(res.Notes, fmt.Sprintf("instance sizes scaled by %.3g relative to Table I", cfg.Scale))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("exact solves budgeted at %v each; unproven entries are lower bounds on the true optimal runtime", cfg.OptimalBudget),
		"sweep points may execute concurrently (Config.Parallelism); timings are per-point wall clock",
		"paper baseline used GUROBI; this repo uses its own LP-relaxation branch-and-bound (see DESIGN.md)")
	return res, nil
}

// table2Point measures one sweep point; a pure function of
// (params, cfg, seed) so points can run concurrently.
func table2Point(label string, p workload.Params, cfg Config, seed int64) (Table2Row, error) {
	r := rand.New(rand.NewSource(seed))
	// The probe build is the timed one (sequential: the point runs on
	// the Table II pool, which owns the parallelism budget); add the
	// price-draw time for the full DP-hSRC execution time.
	inst, a, buildTime, err := generateFeasible(p, r, buildOptions{parallelism: 1})
	if err != nil {
		return Table2Row{}, err
	}
	start := time.Now()
	a.Run(r)
	dpElapsed := buildTime + time.Since(start)

	opt, err := ilp.Optimal(inst, ilp.Options{TimeBudget: cfg.OptimalBudget, TotalBudget: 4 * cfg.OptimalBudget})
	if err != nil {
		return Table2Row{}, err
	}
	return Table2Row{
		Label:      label,
		DPSeconds:  dpElapsed.Seconds(),
		OptSeconds: opt.Elapsed.Seconds(),
		OptProven:  opt.Proven,
	}, nil
}

// Render converts the result into two text tables matching the paper's
// layout (one block per setting).
func (t Table2Result) Render() (settingI, settingII plot.Table) {
	mk := func(rows []Table2Row, varName string) plot.Table {
		tbl := plot.Table{Headers: []string{varName, "DP-hSRC (s)", "Optimal (s)"}}
		for _, row := range rows {
			opt := fmt.Sprintf("%.3f", row.OptSeconds)
			if !row.OptProven {
				opt = ">= " + opt + " (budget)"
			}
			tbl.Rows = append(tbl.Rows, []string{
				row.Label,
				fmt.Sprintf("%.3f", row.DPSeconds),
				opt,
			})
		}
		return tbl
	}
	return mk(t.SettingI, "N"), mk(t.SettingII, "K")
}
