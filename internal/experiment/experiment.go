// Package experiment regenerates every table and figure of the paper's
// evaluation (Section VII): the payment sweeps of Figures 1-4, the
// execution-time comparison of Table II, and the payment-privacy
// trade-off of Figure 5. Each runner returns plottable series plus
// notes recording any deviation (e.g. exact-solver budgets), and the
// cmd/dphsrc-bench binary writes them as CSV and SVG.
package experiment

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/ilp"
	"github.com/dphsrc/dphsrc/internal/plot"
	"github.com/dphsrc/dphsrc/internal/stats"
	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
	"github.com/dphsrc/dphsrc/internal/workload"
)

// ErrNoFeasibleInstance reports that instance generation kept producing
// infeasible auctions for a sweep point.
var ErrNoFeasibleInstance = errors.New("experiment: could not generate a feasible instance")

// Config controls how the experiment runners execute.
type Config struct {
	// Seed roots all randomness; every runner is deterministic given
	// Seed.
	Seed int64
	// Samples, when positive, estimates payment statistics by
	// Monte-Carlo sampling that many prices (the paper samples 10000).
	// When zero, the exact mean and standard deviation are computed
	// from the mechanism's closed-form PMF, which is equivalent and
	// faster.
	Samples int
	// Instances is how many instances are averaged per sweep point;
	// defaults to 1 (as in the paper, whose curves are explicitly
	// non-smooth due to single-instance randomness).
	Instances int
	// OptimalBudget caps each exact TPM solve; the full per-instance
	// R_OPT computation is additionally capped at 4x this value. When a
	// budget expires the greedy/LP-guided incumbent is reported and the
	// figure notes record it. Zero means a default of 5s.
	OptimalBudget time.Duration
	// Scale multiplies worker and task counts of the paper settings;
	// 1.0 reproduces Table I exactly. Smaller scales keep the exact
	// "Optimal" baseline provable on modest hardware (the paper's
	// GUROBI runs took up to 6139 s).
	Scale float64
	// Parallelism is the runners' single concurrency budget: it bounds
	// the worker pool that sweep points and per-point instances fan out
	// on. Inside the pool every auction construction runs sequentially —
	// the pool already owns the budget, and nesting core.WithParallelism
	// under it would schedule parallelism^2 contending goroutines (the
	// oversubscription bug ISSUE 9 fixed; see DESIGN.md "Hot path &
	// scratch memory"). Builds that happen outside a pool (Figure 5's
	// per-profile constructions) do use the full budget. Results are
	// byte-identical to sequential execution: every job's randomness is
	// pre-derived from Seed in the sequential order and aggregation
	// happens in index order. Zero means GOMAXPROCS; 1 forces the
	// sequential path.
	Parallelism int
	// Telemetry, when non-nil, instruments the measured auction
	// constructions (mcs_core_*): the payment sweeps count exactly one
	// auction per sweep-point instance per selection rule, and the
	// epsilon sweep counts its per-profile constructions and reweights.
	// Feasibility probing that discards the auction (Figure 5, Table II)
	// stays uninstrumented so the counters reflect the measured builds.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the run's structured event stream:
	// sweep.start / sweep.progress (with an ETA extrapolated from the
	// worker pool's completion rate) / sweep.complete per runner, plus
	// the core.build / core.reweight events of the measured auction
	// constructions. Nil disables event logging at zero cost. Under
	// Parallelism > 1 the progress events interleave in scheduling
	// order; the figure data stays byte-identical regardless.
	Events *evlog.Logger
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Instances <= 0 {
		c.Instances = 1
	}
	if c.OptimalBudget <= 0 {
		c.OptimalBudget = 5 * time.Second
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// progressTracker emits the sweep lifecycle events for one runner:
// sweep.start when the pool is about to fan out, sweep.progress after
// every completed job (carrying an ETA extrapolated from the pool's
// completion rate so far), and sweep.complete at the end. All methods
// are safe from pool goroutines; with a nil event log everything
// degrades to nops.
type progressTracker struct {
	ev        *evlog.Logger
	id        string
	total     int64
	start     time.Time
	completed atomic.Int64
}

// startProgress announces the sweep and returns its tracker.
func startProgress(ev *evlog.Logger, id string, totalJobs int) *progressTracker {
	pt := &progressTracker{ev: ev, id: id, total: int64(totalJobs), start: ev.Now()}
	ev.Info("sweep.start", evlog.String("figure", id), evlog.Int("jobs", totalJobs))
	return pt
}

// jobDone records one finished pool job.
func (pt *progressTracker) jobDone() {
	n := pt.completed.Add(1)
	if !pt.ev.Enabled(evlog.LevelDebug) {
		return
	}
	elapsed := pt.ev.Now().Sub(pt.start).Seconds()
	eta := 0.0
	if n < pt.total {
		eta = elapsed / float64(n) * float64(pt.total-n)
	}
	pt.ev.Debug("sweep.progress",
		evlog.String("figure", pt.id),
		evlog.Int64("completed", n),
		evlog.Int64("total", pt.total),
		evlog.Float("elapsed_seconds", elapsed),
		evlog.Float("eta_seconds", eta))
}

// done announces sweep completion.
func (pt *progressTracker) done() {
	pt.ev.Info("sweep.complete",
		evlog.String("figure", pt.id),
		evlog.Int64("jobs", pt.completed.Load()),
		evlog.Seconds("elapsed", pt.ev.Now().Sub(pt.start)))
}

// FigureResult is the data behind one reproduced figure.
type FigureResult struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []plot.Series
	// LogX marks figures with a logarithmic x axis (Figure 5).
	LogX bool
	// Notes record methodological details (budgets hit, scales used).
	Notes []string
}

// Chart converts the result to a renderable chart.
func (f FigureResult) Chart() plot.Chart {
	return plot.Chart{
		Title:  f.Title,
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		Series: f.Series,
		LogX:   f.LogX,
	}
}

// paymentStats returns the mean and standard deviation of the total
// payment under the auction's output distribution, either exactly from
// the PMF or by Monte-Carlo sampling per cfg.
func paymentStats(a *core.Auction, cfg Config, r *rand.Rand) (mean, std float64) {
	if cfg.Samples > 0 {
		var acc stats.Accumulator
		for s := 0; s < cfg.Samples; s++ {
			acc.Add(a.Run(r).TotalPayment)
		}
		return acc.Mean(), acc.StdDev()
	}
	pmf := a.PMF()
	support := a.Support()
	m, m2 := 0.0, 0.0
	for i, info := range support {
		m += pmf[i] * info.Payment
		m2 += pmf[i] * info.Payment * info.Payment
	}
	v := m2 - m*m
	if v < 0 {
		v = 0
	}
	return m, math.Sqrt(v)
}

// buildOptions says how generateFeasible constructs the auction it
// probes feasibility with. Callers inside a runIndexed pool pass
// parallelism 1 — the pool owns the concurrency budget (Config.
// Parallelism doc) — and set telemetry/events only when the returned
// auction is the measured one rather than a discarded probe.
type buildOptions struct {
	parallelism int
	telemetry   *telemetry.Registry
	events      *evlog.Logger
}

// generateFeasible draws instances until one admits a feasible auction,
// up to a retry cap. The successful auction is returned along with its
// construction wall-clock time, so callers measuring build cost
// (Figures 1-4, Table II) reuse it instead of constructing the same
// auction a second time.
func generateFeasible(p workload.Params, r *rand.Rand, opt buildOptions) (core.Instance, *core.Auction, time.Duration, error) {
	for attempt := 0; attempt < 20; attempt++ {
		inst, err := p.Generate(r)
		if err != nil {
			return core.Instance{}, nil, 0, err
		}
		start := time.Now()
		a, err := core.New(inst, core.WithParallelism(opt.parallelism),
			core.WithTelemetry(opt.telemetry), core.WithEventLog(opt.events))
		if err == nil {
			return inst, a, time.Since(start), nil
		}
		if !errors.Is(err, core.ErrInfeasible) {
			return core.Instance{}, nil, 0, err
		}
	}
	return core.Instance{}, nil, 0, fmt.Errorf("%w: N=%d K=%d", ErrNoFeasibleInstance, p.N, p.K)
}

// instanceResult is the outcome of one (sweep point, instance) job: the
// independent unit of work a payment sweep fans out on the pool.
type instanceResult struct {
	dpMean, dpStd     float64
	baseMean, baseStd float64
	optPayment        float64
	optProven         bool
	optElapsed        time.Duration
	dpElapsed         time.Duration
	err               error
}

// runSweepInstance evaluates DP-hSRC, the baseline, and optionally the
// exact optimum on one fresh instance of the family. The job is a pure
// function of (params, cfg, seed), so the pool can run jobs in any
// order and still reproduce the sequential sweep exactly.
func runSweepInstance(p workload.Params, withOptimal bool, cfg Config, seed int64) instanceResult {
	var res instanceResult
	r := rand.New(rand.NewSource(seed))
	// The feasibility-probe build IS the measured DP auction: timed,
	// instrumented, and reused — the old code built it a second time
	// "to time construction alone" and paid twice per sweep point.
	// Parallelism 1: this job already runs on the sweep pool, which
	// owns the concurrency budget.
	inst, dpAuction, buildTime, err := generateFeasible(p, r,
		buildOptions{parallelism: 1, telemetry: cfg.Telemetry, events: cfg.Events})
	if err != nil {
		res.err = err
		return res
	}
	res.dpElapsed = buildTime

	res.dpMean, res.dpStd = paymentStats(dpAuction, cfg, r)

	baseAuction, err := core.New(inst, core.WithRule(core.RuleStatic),
		core.WithTelemetry(cfg.Telemetry), core.WithEventLog(cfg.Events))
	if err != nil {
		res.err = err
		return res
	}
	res.baseMean, res.baseStd = paymentStats(baseAuction, cfg, r)

	if withOptimal {
		opt, err := ilp.Optimal(inst, ilp.Options{TimeBudget: cfg.OptimalBudget, TotalBudget: 4 * cfg.OptimalBudget})
		if err != nil {
			res.err = err
			return res
		}
		if !opt.Feasible {
			res.err = fmt.Errorf("%w: optimal solver disagrees on feasibility", ErrNoFeasibleInstance)
			return res
		}
		res.optPayment = opt.TotalPayment
		res.optProven = opt.Proven
		res.optElapsed = opt.Elapsed
	}
	return res
}

// paymentSweep runs a full figure sweep over the given x values,
// fanning the (point, instance) jobs out on a bounded pool of
// cfg.Parallelism workers. Seeds are pre-derived from cfg.Seed in the
// sequential (point, instance) order and aggregation walks the same
// order, so the result is byte-identical to the sequential sweep.
func paymentSweep(id, title, xlabel string, xs []int, family func(int) workload.Params, withOptimal bool, cfg Config) (FigureResult, error) {
	cfg = cfg.withDefaults()
	seeder := stats.NewSeeder(cfg.Seed)
	params := make([]workload.Params, len(xs))
	seeds := make([]int64, len(xs)*cfg.Instances)
	for pi := range xs {
		params[pi] = family(xs[pi]).Scaled(cfg.Scale)
		for k := 0; k < cfg.Instances; k++ {
			seeds[pi*cfg.Instances+k] = seeder.Next()
		}
	}
	results := make([]instanceResult, len(seeds))
	pt := startProgress(cfg.Events, id, len(seeds))
	runIndexed(len(seeds), cfg.Parallelism, func(i int) {
		results[i] = runSweepInstance(params[i/cfg.Instances], withOptimal, cfg, seeds[i])
		pt.jobDone()
	})
	pt.done()

	var (
		dp, base, opt plot.Series
		notes         []string
	)
	dp.Name, base.Name, opt.Name = "DP-hSRC Auction", "Baseline Auction", "Optimal"
	unproven := 0
	for pi, x := range xs {
		var dpAcc, dpStdAcc, baseAcc, baseStdAcc, optAcc stats.Accumulator
		optProven := true
		for k := 0; k < cfg.Instances; k++ {
			res := results[pi*cfg.Instances+k]
			if res.err != nil {
				return FigureResult{}, fmt.Errorf("experiment %s at x=%d: %w", id, x, res.err)
			}
			dpAcc.Add(res.dpMean)
			dpStdAcc.Add(res.dpStd)
			baseAcc.Add(res.baseMean)
			baseStdAcc.Add(res.baseStd)
			if withOptimal {
				optAcc.Add(res.optPayment)
				optProven = optProven && res.optProven
			}
		}
		dp.X = append(dp.X, float64(x))
		dp.Y = append(dp.Y, dpAcc.Mean())
		dp.YErr = append(dp.YErr, dpStdAcc.Mean())
		base.X = append(base.X, float64(x))
		base.Y = append(base.Y, baseAcc.Mean())
		base.YErr = append(base.YErr, baseStdAcc.Mean())
		if withOptimal {
			opt.X = append(opt.X, float64(x))
			opt.Y = append(opt.Y, optAcc.Mean())
			if !optProven {
				unproven++
			}
		}
	}
	series := []plot.Series{}
	if withOptimal {
		series = append(series, opt)
		if unproven > 0 {
			notes = append(notes, fmt.Sprintf("%d/%d optimal points hit the %v solve budget; incumbent shown (upper bound on R_OPT)", unproven, len(xs), cfg.OptimalBudget))
		}
	}
	series = append(series, dp, base)
	if cfg.Scale != 1 {
		notes = append(notes, fmt.Sprintf("instance sizes scaled by %.3g relative to Table I", cfg.Scale))
	}
	if cfg.Samples > 0 {
		notes = append(notes, fmt.Sprintf("payment statistics from %d Monte-Carlo price samples per point", cfg.Samples))
	} else {
		notes = append(notes, "payment statistics computed exactly from the mechanism PMF (equivalent to the paper's 10000-sample estimate)")
	}
	return FigureResult{
		ID:     id,
		Title:  title,
		XLabel: xlabel,
		YLabel: "Platform's Total Payment",
		Series: series,
		Notes:  notes,
	}, nil
}

// Figure1 reproduces Figure 1: total payment vs number of workers under
// Setting I, comparing Optimal, DP-hSRC and the baseline auction.
func Figure1(cfg Config) (FigureResult, error) {
	xs := rangeInts(80, 140, 5)
	return paymentSweep("fig1", "Platform's total payment under Setting I", "Number of Workers",
		xs, workload.SettingI, true, cfg)
}

// Figure2 reproduces Figure 2: total payment vs number of tasks under
// Setting II.
func Figure2(cfg Config) (FigureResult, error) {
	xs := rangeInts(20, 50, 2)
	return paymentSweep("fig2", "Platform's total payment under Setting II", "Number of Tasks",
		xs, workload.SettingII, true, cfg)
}

// Figure3 reproduces Figure 3: total payment vs number of workers under
// Setting III (no exact optimum; the problem sizes make it infeasible,
// exactly as the paper reports for GUROBI).
func Figure3(cfg Config) (FigureResult, error) {
	xs := rangeInts(800, 1400, 50)
	return paymentSweep("fig3", "Platform's total payment under Setting III", "Number of Workers",
		xs, workload.SettingIII, false, cfg)
}

// Figure4 reproduces Figure 4: total payment vs number of tasks under
// Setting IV.
func Figure4(cfg Config) (FigureResult, error) {
	xs := rangeInts(200, 500, 20)
	return paymentSweep("fig4", "Platform's total payment under Setting IV", "Number of Tasks",
		xs, workload.SettingIV, false, cfg)
}

// rangeInts returns lo, lo+step, ..., <= hi.
func rangeInts(lo, hi, step int) []int {
	var out []int
	for v := lo; v <= hi; v += step {
		out = append(out, v)
	}
	return out
}
