package experiment

import (
	"reflect"
	"testing"
	"time"

	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/workload"
)

// TestParallelSweepByteIdenticalToSequential pins the tentpole
// determinism contract: fanning sweep points and per-point instances
// out on the pool must not change a single byte of the result, because
// seeds are pre-derived in the sequential order and aggregation walks
// the same order.
func TestParallelSweepByteIdenticalToSequential(t *testing.T) {
	mk := func(parallelism int) Config {
		return Config{
			Seed:        7,
			Scale:       0.08,
			Instances:   2,
			Parallelism: parallelism,
		}
	}
	xs := []int{200, 260, 320}
	seq, err := paymentSweep("figX", "t", "x", xs, workload.SettingIV, false, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := paymentSweep("figX", "t", "x", xs, workload.SettingIV, false, mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestParallelFigure5ByteIdenticalToSequential(t *testing.T) {
	mk := func(parallelism int) Config {
		return Config{Seed: 7, Scale: 0.08, Parallelism: parallelism}
	}
	seq, err := Figure5(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure5(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Figure5 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestParallelTable2StructureMatchesSequential checks the Table II
// sweep measures the same instances regardless of parallelism: labels
// and proof status are deterministic, only wall-clock timings float.
func TestParallelTable2StructureMatchesSequential(t *testing.T) {
	mk := func(parallelism int) Config {
		return Config{Seed: 7, Scale: 0.35, OptimalBudget: 100 * time.Millisecond, Parallelism: parallelism}
	}
	seq, err := Table2(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table2(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.SettingI) != len(par.SettingI) || len(seq.SettingII) != len(par.SettingII) {
		t.Fatalf("row counts differ: %d/%d vs %d/%d",
			len(seq.SettingI), len(seq.SettingII), len(par.SettingI), len(par.SettingII))
	}
	for i := range seq.SettingI {
		if seq.SettingI[i].Label != par.SettingI[i].Label {
			t.Errorf("SettingI row %d label %q vs %q", i, seq.SettingI[i].Label, par.SettingI[i].Label)
		}
	}
	for i := range seq.SettingII {
		if seq.SettingII[i].Label != par.SettingII[i].Label {
			t.Errorf("SettingII row %d label %q vs %q", i, seq.SettingII[i].Label, par.SettingII[i].Label)
		}
	}
	if !reflect.DeepEqual(seq.Notes, par.Notes) {
		t.Errorf("notes differ:\nseq: %v\npar: %v", seq.Notes, par.Notes)
	}
}

// figure5Telemetry runs Figure5 over the given epsilon grid against a
// fresh registry and returns the auctions/gain-evals/reweights
// counters. Figure5Epsilons is swapped and restored around the run.
func figure5Telemetry(t *testing.T, epsilons []float64) (auctions, gainEvals, reweights int64) {
	t.Helper()
	saved := Figure5Epsilons
	Figure5Epsilons = epsilons
	defer func() { Figure5Epsilons = saved }()

	reg := telemetry.NewRegistry()
	cfg := Config{Seed: 7, Scale: 0.08, Parallelism: 4, Telemetry: reg}
	if _, err := Figure5(cfg); err != nil {
		t.Fatal(err)
	}
	return reg.Counter("mcs_core_auctions_total", "").Value(),
		reg.Counter("mcs_core_gain_evals_total", "").Value(),
		reg.Counter("mcs_core_reweights_total", "").Value()
}

// TestFigure5SharesWinnerSetConstruction is the acceptance check that
// Figure 5's epsilon sweep performs winner-set construction once per
// profile (1 base + 12 perturbations): the gain-eval telemetry is flat
// in the number of epsilons, auctions_total stays at 13, and every
// sweep point is a reweight.
func TestFigure5SharesWinnerSetConstruction(t *testing.T) {
	const profiles = 13 // 1 base instance + 12 adversarial perturbations
	shortEps := []float64{0.25, 1000}
	longEps := []float64{0.25, 1, 5, 45, 200, 1000}

	auctionsShort, gainShort, reweightsShort := figure5Telemetry(t, shortEps)
	auctionsLong, gainLong, reweightsLong := figure5Telemetry(t, longEps)

	if auctionsShort != profiles || auctionsLong != profiles {
		t.Errorf("auctions_total = %d / %d, want %d for both sweep lengths",
			auctionsShort, auctionsLong, profiles)
	}
	if reweightsShort != int64(profiles*len(shortEps)) {
		t.Errorf("reweights_total = %d, want %d", reweightsShort, profiles*len(shortEps))
	}
	if reweightsLong != int64(profiles*len(longEps)) {
		t.Errorf("reweights_total = %d, want %d", reweightsLong, profiles*len(longEps))
	}
	if gainShort == 0 {
		t.Fatal("expected gain evaluations during construction")
	}
	if gainShort != gainLong {
		t.Errorf("gain_evals_total varies with sweep length: %d (2 eps) vs %d (6 eps) — winner sets rebuilt per epsilon",
			gainShort, gainLong)
	}
}

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, parallelism := range []int{0, 1, 3, 16} {
		hits := make([]int, 37)
		runIndexed(len(hits), parallelism, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism=%d: index %d ran %d times", parallelism, i, h)
			}
		}
	}
}
