package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dphsrc/dphsrc/internal/workload"
)

// testConfig keeps the sweeps small enough for CI while exercising the
// full pipeline.
func testConfig() Config {
	return Config{
		Seed:          7,
		Scale:         0.35,
		OptimalBudget: 500 * time.Millisecond,
	}
}

func TestFigure1ShapeAndOrdering(t *testing.T) {
	res, err := Figure1(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig1" || len(res.Series) != 3 {
		t.Fatalf("unexpected result shape: %s with %d series", res.ID, len(res.Series))
	}
	byName := map[string][]float64{}
	for _, s := range res.Series {
		byName[s.Name] = s.Y
	}
	opt, dp, base := byName["Optimal"], byName["DP-hSRC Auction"], byName["Baseline Auction"]
	if opt == nil || dp == nil || base == nil {
		t.Fatalf("missing series: %v", byName)
	}
	// The paper's headline shape: Optimal <= DP-hSRC (in expectation;
	// tiny numerical slack) and DP-hSRC beats the baseline on average
	// across the sweep.
	dpSum, baseSum := 0.0, 0.0
	for i := range dp {
		if opt[i] > dp[i]+1e-6 {
			t.Errorf("point %d: optimal %v exceeds DP-hSRC %v", i, opt[i], dp[i])
		}
		dpSum += dp[i]
		baseSum += base[i]
	}
	if dpSum >= baseSum {
		t.Errorf("DP-hSRC mean payment %v not below baseline %v", dpSum, baseSum)
	}
}

func TestFigure2Runs(t *testing.T) {
	res, err := Figure2(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("want 3 series, got %d", len(res.Series))
	}
	if len(res.Series[0].X) != len(rangeInts(20, 50, 2)) {
		t.Errorf("sweep length %d", len(res.Series[0].X))
	}
}

func TestFigure3And4NoOptimal(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.06 // Setting III/IV are large; shrink hard for CI
	for _, fn := range []func(Config) (FigureResult, error){Figure3, Figure4} {
		res, err := fn(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Series) != 2 {
			t.Fatalf("%s: want 2 series (no optimal), got %d", res.ID, len(res.Series))
		}
		dp, base := res.Series[0], res.Series[1]
		if dp.Name != "DP-hSRC Auction" || base.Name != "Baseline Auction" {
			t.Fatalf("%s: unexpected series names %q, %q", res.ID, dp.Name, base.Name)
		}
		dpSum, baseSum := 0.0, 0.0
		for i := range dp.Y {
			dpSum += dp.Y[i]
			baseSum += base.Y[i]
		}
		if dpSum >= baseSum {
			t.Errorf("%s: DP-hSRC %v not below baseline %v", res.ID, dpSum, baseSum)
		}
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	// The exact-PMF statistics and the paper's sampling estimate must
	// agree; cross-check a single Setting II point both ways.
	exactCfg := testConfig()
	mcCfg := testConfig()
	mcCfg.Samples = 20000
	exact, err := paymentSweep("chk", "t", "x", []int{30}, workload.SettingII, false, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := paymentSweep("chk", "t", "x", []int{30}, workload.SettingII, false, mcCfg)
	if err != nil {
		t.Fatal(err)
	}
	em, mm := exact.Series[0].Y[0], mc.Series[0].Y[0]
	if rel := abs(em-mm) / em; rel > 0.02 {
		t.Errorf("exact mean %v vs Monte-Carlo mean %v (rel err %.3f)", em, mm, rel)
	}
	es, ms := exact.Series[0].YErr[0], mc.Series[0].YErr[0]
	if es > 0 && abs(es-ms)/es > 0.15 {
		t.Errorf("exact std %v vs Monte-Carlo std %v", es, ms)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTable2(t *testing.T) {
	cfg := testConfig()
	cfg.OptimalBudget = 200 * time.Millisecond
	res, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SettingI) != 8 || len(res.SettingII) != 8 {
		t.Fatalf("row counts %d/%d, want 8/8 (paper Table II)", len(res.SettingI), len(res.SettingII))
	}
	for _, row := range append(res.SettingI, res.SettingII...) {
		if row.DPSeconds <= 0 || row.OptSeconds <= 0 {
			t.Errorf("row %s has non-positive timings: %+v", row.Label, row)
		}
	}
	tblI, tblII := res.Render()
	if !strings.Contains(tblI.String(), "N=80") || !strings.Contains(tblII.String(), "K=20") {
		t.Error("rendered tables missing sweep labels")
	}
}

func TestFigure5TradeoffMonotonicity(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 0.08
	res, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payment) != len(Figure5Epsilons) || len(res.Leakage) != len(Figure5Epsilons) {
		t.Fatalf("sweep lengths %d/%d", len(res.Payment), len(res.Leakage))
	}
	// The paper's trade-off: payment decreases and leakage increases
	// with epsilon. Individual adjacent points can tie; compare the
	// endpoints, which must be strictly ordered.
	first, last := 0, len(Figure5Epsilons)-1
	if !(res.Payment[first] > res.Payment[last]) {
		t.Errorf("payment at eps=%v (%v) not above payment at eps=%v (%v)",
			Figure5Epsilons[first], res.Payment[first], Figure5Epsilons[last], res.Payment[last])
	}
	if !(res.Leakage[first] < res.Leakage[last]) {
		t.Errorf("leakage at eps=%v (%v) not below leakage at eps=%v (%v)",
			Figure5Epsilons[first], res.Leakage[first], Figure5Epsilons[last], res.Leakage[last])
	}
	for _, l := range res.Leakage {
		if l < 0 {
			t.Errorf("negative leakage %v", l)
		}
	}
	payment, leakage := res.Charts()
	if _, err := payment.SVG(); err != nil {
		t.Errorf("payment chart: %v", err)
	}
	if _, err := leakage.SVG(); err != nil {
		t.Errorf("leakage chart: %v", err)
	}
}

func TestWriteFigureAndTables(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.Scale = 0.2
	res, err := paymentSweep("figX", "test", "x", []int{25, 30}, workload.SettingII, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	files, err := WriteFigure(dir, res)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Errorf("file %s missing or empty", f)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "figX.svg")); err != nil {
		t.Error("svg not written")
	}

	t2, err := Table2(Config{Seed: 3, Scale: 0.35, OptimalBudget: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	files, err = WriteTable2(dir, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Errorf("table2 wrote %d files, want 3", len(files))
	}

	f5 := Figure5Result{
		Epsilons: []float64{0.25, 1000},
		Payment:  []float64{100, 50},
		Leakage:  []float64{0.001, 2},
		Notes:    []string{"synthetic"},
	}
	files, err = WriteFigure5(dir, f5)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Errorf("figure5 wrote %d files, want 4", len(files))
	}
}

func TestRangeInts(t *testing.T) {
	got := rangeInts(80, 140, 5)
	if len(got) != 13 || got[0] != 80 || got[12] != 140 {
		t.Errorf("rangeInts = %v", got)
	}
}
