package privacy

import (
	"fmt"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/mechanism"
)

// LeakagePoint is one point of a privacy-budget sweep: the exact
// leakage between two adjacent bid profiles at one epsilon, paired with
// the payment the platform gives up for that privacy level.
type LeakagePoint struct {
	// Epsilon is the privacy budget the mechanisms were reweighted to.
	Epsilon float64
	// Leakage is the exact distinguishability of the two output
	// distributions (Definition 8: KL, max-log-ratio, TV).
	Leakage mechanism.Leakage
	// ExpectedPayment is profile A's exact expected total payment at
	// this epsilon — the cost side of the payment-privacy trade-off.
	ExpectedPayment float64
}

// EpsilonSweep traces the payment-privacy trade-off between two
// auctions built from adjacent bid profiles over the SAME fixed price
// support (core.WithPriceSet; Algorithm 1 takes P as input). Winner
// sets do not depend on epsilon, so each sweep point derives from the
// two precomputed auctions by Auction.Reweight — construction is paid
// once per profile, not once per epsilon. The returned points are in
// the order of the given epsilons.
func EpsilonSweep(a, b *core.Auction, epsilons []float64) ([]LeakagePoint, error) {
	if a == nil || b == nil || len(epsilons) == 0 {
		return nil, fmt.Errorf("%w: EpsilonSweep needs two auctions and at least one epsilon", ErrBadArgument)
	}
	out := make([]LeakagePoint, len(epsilons))
	for i, eps := range epsilons {
		ra, err := a.Reweight(eps)
		if err != nil {
			return nil, fmt.Errorf("privacy: reweighting profile A to eps=%v: %w", eps, err)
		}
		rb, err := b.Reweight(eps)
		if err != nil {
			return nil, fmt.Errorf("privacy: reweighting profile B to eps=%v: %w", eps, err)
		}
		leak, err := mechanism.MeasureLeakage(ra.Mechanism(), rb.Mechanism())
		if err != nil {
			return nil, fmt.Errorf("privacy: leakage at eps=%v: %w", eps, err)
		}
		out[i] = LeakagePoint{Epsilon: eps, Leakage: leak, ExpectedPayment: ra.ExpectedPayment()}
	}
	return out, nil
}
