package privacy

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// TestBudgetLedgerCrossChecksLeakageAndMetrics is the audit-trail
// acceptance test: one epsilon sweep with a metered accountant must
// leave three mutually consistent records — the structured event
// stream's folded budget ledger, the mcs_mechanism_* metric families,
// and the KL-leakage meter's per-point measurements. Every equality on
// the float ledger is exact (==), not approximate: budget.spend events
// carry the accountant's own cumulative additions.
func TestBudgetLedgerCrossChecksLeakageAndMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	ev := evlog.New()

	instA := sweepInstance()
	instB := sweepInstance()
	instB.Workers[0].Bid = 24
	support := core.PriceGridRange(15, 25, 1)
	build := func(inst core.Instance) *core.Auction {
		a, err := core.New(inst, core.WithPriceSet(support),
			core.WithTelemetry(reg), core.WithEventLog(ev))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := build(instA), build(instB)

	epsilons := []float64{0.1, 0.5, 2, 10}
	points, err := EpsilonSweep(a, b, epsilons)
	if err != nil {
		t.Fatal(err)
	}

	// The accountant meters one release of profile A per sweep point,
	// then is driven into one refusal.
	var budget float64
	for _, eps := range epsilons {
		budget += eps
	}
	acct, err := mechanism.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	acct.Instrument(reg)
	acct.ObserveEvents(ev)
	for _, eps := range epsilons {
		if err := acct.Spend(eps); err != nil {
			t.Fatalf("spend eps=%v: %v", eps, err)
		}
	}
	if err := acct.Spend(1); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("overdraw returned %v, want ErrBudgetExhausted", err)
	}

	// 1. Ledger vs accountant: fold the stream and demand bit-for-bit
	// agreement with the accountant's own totals.
	var buf bytes.Buffer
	if err := ev.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := evlog.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	led, err := evlog.FoldBudget(events)
	if err != nil {
		t.Fatal(err)
	}
	if led.Releases != len(epsilons) || led.Refusals != 1 {
		t.Errorf("ledger has %d releases / %d refusals, want %d / 1", led.Releases, led.Refusals, len(epsilons))
	}
	if led.CumulativeEpsilon != acct.Spent() {
		t.Errorf("folded cumulative epsilon %v != accountant spent %v (must be exact)", led.CumulativeEpsilon, acct.Spent())
	}
	if led.FinalSpent != acct.Spent() {
		t.Errorf("ledger final spent %v != accountant %v", led.FinalSpent, acct.Spent())
	}
	if led.Total != acct.Total() {
		t.Errorf("ledger total %v != accountant budget %v", led.Total, acct.Total())
	}

	// 2. Ledger vs mcs_mechanism_* metrics: the counters and gauge must
	// tell the same story as the folded stream.
	if got := reg.Counter("mcs_mechanism_spends_total", "").Value(); got != int64(led.Releases) {
		t.Errorf("mcs_mechanism_spends_total %d != ledger releases %d", got, led.Releases)
	}
	if got := reg.Counter("mcs_mechanism_spend_refusals_total", "").Value(); got != int64(led.Refusals) {
		t.Errorf("mcs_mechanism_spend_refusals_total %d != ledger refusals %d", got, led.Refusals)
	}
	if got := reg.Gauge("mcs_mechanism_epsilon_spent", "").Value(); got != led.FinalSpent {
		t.Errorf("mcs_mechanism_epsilon_spent %v != ledger final spent %v", got, led.FinalSpent)
	}
	if got := reg.Gauge("mcs_mechanism_epsilon_budget", "").Value(); got != led.Total {
		t.Errorf("mcs_mechanism_epsilon_budget %v != ledger total %v", got, led.Total)
	}

	// 3. Ledger vs KL-leakage meter: each metered release must actually
	// bound the measured distinguishability at its epsilon — the spend
	// events claim a privacy cost; the meter confirms the mechanism
	// stayed inside it.
	spendEps := make([]float64, 0, len(epsilons))
	for _, e := range events {
		if e.Name != evlog.EventBudgetSpend {
			continue
		}
		eps, ok := e.Float("eps")
		if !ok {
			t.Fatalf("budget.spend without eps: %v", e.Fields)
		}
		spendEps = append(spendEps, eps)
	}
	if len(spendEps) != len(points) {
		t.Fatalf("%d spend events for %d sweep points", len(spendEps), len(points))
	}
	for i, pt := range points {
		if spendEps[i] != pt.Epsilon {
			t.Errorf("spend %d debits eps=%v, sweep point charged %v", i, spendEps[i], pt.Epsilon)
		}
		if pt.Leakage.MaxLogRatio > pt.Epsilon+1e-9 {
			t.Errorf("eps=%v: measured max log ratio %v exceeds the debited budget", pt.Epsilon, pt.Leakage.MaxLogRatio)
		}
		if pt.Leakage.KL > pt.Epsilon+1e-9 {
			t.Errorf("eps=%v: measured KL %v exceeds the debited budget", pt.Epsilon, pt.Leakage.KL)
		}
		if pt.Leakage.KL < 0 || math.IsNaN(pt.Leakage.KL) {
			t.Errorf("eps=%v: KL %v out of range", pt.Epsilon, pt.Leakage.KL)
		}
	}

	// 4. Shared-vs-rebuilt provenance: the sweep must have constructed
	// each profile exactly once (core.build, shared=false) and derived
	// every point by reweighting (core.reweight, shared=true), visible
	// both in the events and in mcs_core_reweights_total.
	builds, reweights := 0, 0
	for _, e := range events {
		switch e.Name {
		case "core.build":
			builds++
			if shared, ok := e.Bool("shared"); !ok || shared {
				t.Errorf("core.build event seq=%d: shared=%v ok=%v, want false", e.Seq, shared, ok)
			}
		case "core.reweight":
			reweights++
			if shared, ok := e.Bool("shared"); !ok || !shared {
				t.Errorf("core.reweight event seq=%d: shared=%v ok=%v, want true", e.Seq, shared, ok)
			}
		}
	}
	if builds != 2 {
		t.Errorf("%d core.build events, want 2 (one per profile)", builds)
	}
	if want := 2 * len(epsilons); reweights != want {
		t.Errorf("%d core.reweight events, want %d (two profiles x %d epsilons)", reweights, want, len(epsilons))
	}
	if got := reg.Counter("mcs_core_reweights_total", "").Value(); got != int64(reweights) {
		t.Errorf("mcs_core_reweights_total %d != core.reweight events %d", got, reweights)
	}
}
