package privacy

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/stats"
)

func TestNewDistinguisherValidation(t *testing.T) {
	if _, err := NewDistinguisher([]float64{1}, []float64{0.5, 0.5}); !errors.Is(err, ErrSupportMismatch) {
		t.Errorf("mismatch: got %v", err)
	}
	if _, err := NewDistinguisher([]float64{0.5, 0.6}, []float64{0.5, 0.5}); !errors.Is(err, stats.ErrNotPMF) {
		t.Errorf("non-PMF: got %v", err)
	}
}

func TestExactAdvantageIsHalfTV(t *testing.T) {
	p := []float64{0.8, 0.2}
	q := []float64{0.2, 0.8}
	d, err := NewDistinguisher(p, q)
	if err != nil {
		t.Fatal(err)
	}
	tv, _ := stats.TotalVariation(p, q)
	if got, want := d.ExactAdvantage(), tv/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("advantage = %v, want TV/2 = %v", got, want)
	}
}

func TestExactAdvantageIdenticalHypotheses(t *testing.T) {
	p := []float64{0.3, 0.7}
	d, err := NewDistinguisher(p, p)
	if err != nil {
		t.Fatal(err)
	}
	if adv := d.ExactAdvantage(); adv != 0 {
		t.Errorf("identical hypotheses advantage %v, want 0", adv)
	}
}

func TestSimulateMatchesExactForOneObservation(t *testing.T) {
	p := []float64{0.7, 0.1, 0.2}
	q := []float64{0.2, 0.5, 0.3}
	d, err := NewDistinguisher(p, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	sim, err := d.SimulateAdvantage(1, 200000, r)
	if err != nil {
		t.Fatal(err)
	}
	if exact := d.ExactAdvantage(); math.Abs(sim-exact) > 0.01 {
		t.Errorf("simulated %v vs exact %v", sim, exact)
	}
}

func TestAdvantageGrowsWithObservations(t *testing.T) {
	p := []float64{0.6, 0.4}
	q := []float64{0.4, 0.6}
	d, err := NewDistinguisher(p, q)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	one, err := d.SimulateAdvantage(1, 60000, r)
	if err != nil {
		t.Fatal(err)
	}
	many, err := d.SimulateAdvantage(25, 60000, r)
	if err != nil {
		t.Fatal(err)
	}
	if many <= one {
		t.Errorf("advantage did not grow with observations: 1 obs %v vs 25 obs %v", one, many)
	}
}

func TestSimulateAdvantageValidation(t *testing.T) {
	d, _ := NewDistinguisher([]float64{1}, []float64{1})
	if _, err := d.SimulateAdvantage(0, 10, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero observations: got %v", err)
	}
	if _, err := d.SimulateAdvantage(1, 0, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadArgument) {
		t.Errorf("zero trials: got %v", err)
	}
}

func TestAdvantageBound(t *testing.T) {
	if AdvantageBound(0) != 0 || AdvantageBound(-1) != 0 {
		t.Error("non-positive eps should bound advantage at 0")
	}
	// eps -> infinity: bound -> 1/2.
	if b := AdvantageBound(50); math.Abs(b-0.5) > 1e-9 {
		t.Errorf("large-eps bound %v, want ~0.5", b)
	}
	// Monotone in eps.
	prev := 0.0
	for _, eps := range []float64{0.01, 0.1, 0.5, 1, 2, 5} {
		b := AdvantageBound(eps)
		if b <= prev {
			t.Fatalf("bound not increasing at eps=%v", eps)
		}
		prev = b
	}
}

// TestMechanismAdvantageWithinDPBound is the integration check: for
// DP-hSRC-generated adjacent PMFs, the Bayes-optimal attacker's exact
// advantage respects the epsilon bound.
func TestMechanismAdvantageWithinDPBound(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 60 && checked < 20; trial++ {
		inst := randomFeasibleInstance(r)
		if inst.NumTasks == 0 {
			continue
		}
		support := inst.PriceGrid
		a, err := core.New(inst, core.WithPriceSet(support))
		if err != nil {
			continue
		}
		adj := inst.Clone()
		adj.Workers[r.Intn(len(adj.Workers))].Bid = inst.CMin
		b, err := core.New(adj, core.WithPriceSet(support))
		if err != nil {
			continue
		}
		d, err := NewDistinguisher(a.PMF(), b.PMF())
		if err != nil {
			t.Fatal(err)
		}
		if adv, bound := d.ExactAdvantage(), AdvantageBound(inst.Epsilon); adv > bound+1e-9 {
			t.Fatalf("advantage %v exceeds DP bound %v at eps=%v", adv, bound, inst.Epsilon)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// randomFeasibleInstance draws a small random instance; NumTasks==0
// signals a generation miss.
func randomFeasibleInstance(r *rand.Rand) core.Instance {
	n := 8 + r.Intn(8)
	k := 2 + r.Intn(3)
	inst := core.Instance{
		NumTasks:   k,
		Thresholds: make([]float64, k),
		Workers:    make([]core.Worker, n),
		Skills:     make([][]float64, n),
		Epsilon:    0.1 + r.Float64(),
		CMin:       10,
		CMax:       60,
		PriceGrid:  core.PriceGridRange(20, 60, 2),
	}
	for j := range inst.Thresholds {
		inst.Thresholds[j] = 0.2 + 0.2*r.Float64()
	}
	for i := 0; i < n; i++ {
		inst.Workers[i] = core.Worker{
			Bundle: []int{r.Intn(k)},
			Bid:    10 + math.Floor(r.Float64()*500)/10,
		}
		extra := r.Intn(k)
		if extra != inst.Workers[i].Bundle[0] {
			if extra < inst.Workers[i].Bundle[0] {
				inst.Workers[i].Bundle = []int{extra, inst.Workers[i].Bundle[0]}
			} else {
				inst.Workers[i].Bundle = append(inst.Workers[i].Bundle, extra)
			}
		}
		row := make([]float64, k)
		for j := range row {
			row[j] = 0.7 + 0.25*r.Float64()
		}
		inst.Skills[i] = row
	}
	return inst
}

func TestComposedEpsilon(t *testing.T) {
	if got := ComposedEpsilon(0.1, 10); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("composition = %v, want 1.0", got)
	}
	if ComposedEpsilon(0.1, 0) != 0 || ComposedEpsilon(0.1, -3) != 0 {
		t.Error("non-positive rounds should compose to 0")
	}
}

func TestRoundsToDistinguish(t *testing.T) {
	k, err := RoundsToDistinguish(0.1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// AdvantageBound(k*0.1) must cross 0.25 exactly at k, not before.
	if AdvantageBound(float64(k)*0.1) < 0.25 {
		t.Errorf("k=%d too small", k)
	}
	if k > 1 && AdvantageBound(float64(k-1)*0.1) >= 0.25 {
		t.Errorf("k=%d not minimal", k)
	}
	for _, bad := range []struct{ eps, target float64 }{
		{0, 0.2}, {0.1, 0}, {0.1, 0.5}, {-1, 0.2},
	} {
		if _, err := RoundsToDistinguish(bad.eps, bad.target); !errors.Is(err, ErrBadArgument) {
			t.Errorf("eps=%v target=%v: got %v", bad.eps, bad.target, err)
		}
	}
}
