package privacy

// ParallelComposedEpsilon returns the privacy budget consumed by
// mechanisms run on disjoint subsets of the protected data — parallel
// composition. Where sequential composition (ComposedEpsilon) charges
// the sum of the per-release epsilons because every release observes
// the same bids, parallel composition charges only the maximum: each
// worker's bid enters exactly one partition's mechanism, so from any
// single worker's perspective at most one of the releases depends on
// her data.
//
// This is the arithmetic the shard layer's merge step relies on: a
// round split across N partitions of disjoint workers, each running
// the exponential mechanism at the configured epsilon, debits the
// accountant max(eps_1..eps_N) — with a uniform per-partition epsilon,
// bit-for-bit the same float the unsharded round debits, so FoldBudget
// over the merged stream reproduces the single-shard ledger exactly.
// Non-positive epsilons contribute nothing; an empty or all-non-positive
// argument list returns 0 (no release happened).
func ParallelComposedEpsilon(eps ...float64) float64 {
	m := 0.0
	for _, e := range eps {
		if e > m {
			m = e
		}
	}
	return m
}
