package privacy

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// foldStream writes the logger out as JSONL, re-parses it, and folds
// the budget ledger — the same path mcs-report -check walks.
func foldStream(t *testing.T, ev *evlog.Logger) evlog.BudgetLedger {
	t.Helper()
	var buf bytes.Buffer
	if err := ev.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := evlog.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("event stream invalid: %v", err)
	}
	led, err := evlog.FoldBudget(events)
	if err != nil {
		t.Fatal(err)
	}
	return led
}

func TestParallelComposedEpsilon(t *testing.T) {
	cases := []struct {
		eps  []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0.5}, 0.5},
		{[]float64{0.5, 0.5, 0.5, 0.5}, 0.5},
		{[]float64{0.1, 0.7, 0.3}, 0.7},
		{[]float64{-1, 0, 0.2}, 0.2},
		{[]float64{-1, 0}, 0},
	}
	for i, c := range cases {
		if got := ParallelComposedEpsilon(c.eps...); got != c.want {
			t.Fatalf("case %d: ParallelComposedEpsilon(%v) = %v, want %v", i, c.eps, got, c.want)
		}
	}
	// Uniform partitions: parallel composition over disjoint shards is
	// bit-for-bit the single-mechanism epsilon, never a multiple of it
	// — the invariant the sharded platform's single debit rests on.
	const eps = 0.5
	per := make([]float64, 64)
	for i := range per {
		per[i] = eps
	}
	if got := ParallelComposedEpsilon(per...); got != eps {
		t.Fatalf("64 uniform partitions compose to %v, want exactly %v", got, eps)
	}
	if seq := ComposedEpsilon(eps, 64); seq != 64*eps {
		t.Fatalf("sequential composition = %v, want %v", seq, 64*eps)
	}
}

// TestAccountantZeroEpsilonSpend: non-positive spends are typed
// configuration errors, not free releases — they must not touch the
// ledger or the event stream.
func TestAccountantZeroEpsilonSpend(t *testing.T) {
	ev := evlog.New()
	acct, err := mechanism.NewAccountant(1)
	if err != nil {
		t.Fatal(err)
	}
	acct.ObserveEvents(ev)
	for _, eps := range []float64{0, -0.5} {
		if err := acct.Spend(eps); !errors.Is(err, mechanism.ErrBadBudget) {
			t.Fatalf("Spend(%v) = %v, want ErrBadBudget", eps, err)
		}
	}
	if spent := acct.Spent(); spent != 0 {
		t.Fatalf("ledger moved to %v on rejected spends, want 0", spent)
	}
	led := foldStream(t, ev)
	if led.Releases != 0 || led.Refusals != 0 || led.CumulativeEpsilon != 0 {
		t.Fatalf("zero-epsilon spends leaked into the ledger: %+v", led)
	}
}

// TestAccountantManyPartitionAccumulation: a long mixed-magnitude
// spend sequence (the shape a many-partition campaign produces) folds
// from the event stream bit-for-bit equal to the accountant's own
// cumulative float — FoldBudget replays the exact additions, in order.
func TestAccountantManyPartitionAccumulation(t *testing.T) {
	ev := evlog.New()
	acct, err := mechanism.NewAccountant(1000)
	if err != nil {
		t.Fatal(err)
	}
	acct.ObserveEvents(ev)
	// Deliberately non-commutative magnitudes: summing these floats in
	// any other order yields a different bit pattern, so the equality
	// below proves the fold preserves the accountant's exact order.
	var spends []float64
	for i := 0; i < 64; i++ {
		spends = append(spends, 0.1+float64(i%7)*1e-3+float64(i)*1e-9)
	}
	want := 0.0
	for _, eps := range spends {
		if err := acct.Spend(eps); err != nil {
			t.Fatalf("Spend(%v): %v", eps, err)
		}
		want += eps
	}
	if got := acct.Spent(); got != want {
		t.Fatalf("accountant spent %v, want in-order sum %v", got, want)
	}
	led := foldStream(t, ev)
	if led.FinalSpent != acct.Spent() {
		t.Fatalf("folded FinalSpent %v != accountant %v (bit-for-bit)", led.FinalSpent, acct.Spent())
	}
	if led.CumulativeEpsilon != acct.Spent() {
		t.Fatalf("folded CumulativeEpsilon %v != accountant %v", led.CumulativeEpsilon, acct.Spent())
	}
	if led.Releases != len(spends) {
		t.Fatalf("folded %d spends, want %d", led.Releases, len(spends))
	}
}

// TestAccountantBoundaryRefusal: a spend landing exactly on the budget
// is admitted; the first spend past it is refused with the ledger
// untouched — and the refusal shows up in the folded stream.
func TestAccountantBoundaryRefusal(t *testing.T) {
	ev := evlog.New()
	// 4 spends of 0.25 land exactly on 1.0 in floating point.
	acct, err := mechanism.NewAccountant(1)
	if err != nil {
		t.Fatal(err)
	}
	acct.ObserveEvents(ev)
	for i := 0; i < 4; i++ {
		if err := acct.Spend(0.25); err != nil {
			t.Fatalf("boundary spend %d: %v", i, err)
		}
	}
	if got := acct.Spent(); got != 1 {
		t.Fatalf("spent %v, want exactly 1", got)
	}
	if err := acct.Spend(1e-9); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("past-boundary spend = %v, want ErrBudgetExhausted", err)
	}
	if got := acct.Spent(); got != 1 {
		t.Fatalf("refusal moved the ledger to %v, want 1", got)
	}
	led := foldStream(t, ev)
	if led.FinalSpent != acct.Spent() || led.Releases != 4 || led.Refusals != 1 {
		t.Fatalf("folded ledger %+v disagrees with accountant (spent=1, 4 spends, 1 refusal)", led)
	}
}

// TestShardedDebitFoldsLikeUnsharded: two accountants — one debited by
// an unsharded round, one by the parallel-composed epsilon of an
// 8-partition merge — produce byte-identical folded ledgers. This is
// the equality the sharded platform's acceptance criterion asserts at
// the transport level; here it is pinned at the accounting level.
func TestShardedDebitFoldsLikeUnsharded(t *testing.T) {
	const eps = 0.5
	const rounds = 5
	run := func(debit func() float64) evlog.BudgetLedger {
		ev := evlog.New()
		acct, err := mechanism.NewAccountant(10)
		if err != nil {
			t.Fatal(err)
		}
		acct.ObserveEvents(ev)
		for r := 0; r < rounds; r++ {
			if err := acct.Spend(debit()); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		return foldStream(t, ev)
	}
	unsharded := run(func() float64 { return eps })
	sharded := run(func() float64 {
		per := make([]float64, 8)
		for i := range per {
			per[i] = eps
		}
		return ParallelComposedEpsilon(per...)
	})
	if fmt.Sprintf("%+v", unsharded) != fmt.Sprintf("%+v", sharded) {
		t.Fatalf("ledgers differ:\nunsharded %+v\nsharded   %+v", unsharded, sharded)
	}
	if unsharded.FinalSpent != rounds*eps {
		t.Fatalf("final spent %v, want %v", unsharded.FinalSpent, rounds*eps)
	}
}
