// Package privacy models the adversary the paper defends against: an
// honest-but-curious worker who observes auction outcomes (clearing
// prices / payment profiles) across rounds and tries to infer another
// worker's bid. It provides the Bayes-optimal distinguisher between two
// candidate bids, its exact and simulated advantage, and the caps that
// epsilon-differential privacy places on that advantage under k-fold
// composition.
package privacy

import (
	"errors"
	"math"
	"math/rand"

	"github.com/dphsrc/dphsrc/internal/stats"
)

// Errors returned by the adversary analysis.
var (
	ErrSupportMismatch = errors.New("privacy: hypothesis distributions differ in support size")
	ErrBadArgument     = errors.New("privacy: invalid argument")
)

// Distinguisher is the Bayes-optimal attacker deciding between two
// hypotheses about a victim's bid, given the exact output PMFs the two
// bids induce over the (shared) price support. With uniform prior its
// decision rule is the likelihood-ratio test.
type Distinguisher struct {
	logP []float64 // log-PMF under hypothesis A
	logQ []float64 // log-PMF under hypothesis B
}

// NewDistinguisher builds the attacker from the two hypothesis PMFs.
func NewDistinguisher(pmfA, pmfB []float64) (*Distinguisher, error) {
	if len(pmfA) != len(pmfB) {
		return nil, ErrSupportMismatch
	}
	if err := stats.ValidatePMF(pmfA); err != nil {
		return nil, err
	}
	if err := stats.ValidatePMF(pmfB); err != nil {
		return nil, err
	}
	d := &Distinguisher{
		logP: make([]float64, len(pmfA)),
		logQ: make([]float64, len(pmfB)),
	}
	for i := range pmfA {
		d.logP[i] = safeLog(pmfA[i])
		d.logQ[i] = safeLog(pmfB[i])
	}
	return d, nil
}

// safeLog maps 0 to -Inf without a math domain error surprise.
func safeLog(x float64) float64 {
	if x == 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

// GuessA reports whether the attacker attributes the observed outcome
// indices to hypothesis A (log-likelihood-ratio test with uniform
// prior; ties go to A).
func (d *Distinguisher) GuessA(observations []int) bool {
	llr := 0.0
	for _, o := range observations {
		llr += d.logP[o] - d.logQ[o]
	}
	return llr >= 0
}

// ExactAdvantage returns the attacker's advantage over random guessing
// after exactly one observation, which for the Bayes-optimal test
// equals half the total-variation distance between the hypotheses.
func (d *Distinguisher) ExactAdvantage() float64 {
	adv := 0.0
	for i := range d.logP {
		p := math.Exp(d.logP[i])
		q := math.Exp(d.logQ[i])
		adv += math.Abs(p - q)
	}
	return adv / 4 // TV/2 = (1/2)*(1/2)*sum|p-q|
}

// SimulateAdvantage estimates the attacker's advantage when it sees
// `perRound` outcomes before guessing, over `trials` independent games
// with a uniformly random true hypothesis. The exact multi-observation
// advantage is a sum over |support|^perRound atoms; simulation keeps it
// tractable.
func (d *Distinguisher) SimulateAdvantage(perRound, trials int, r *rand.Rand) (float64, error) {
	if perRound <= 0 || trials <= 0 {
		return 0, ErrBadArgument
	}
	pmfA := expVec(d.logP)
	pmfB := expVec(d.logQ)
	correct := 0
	obs := make([]int, perRound)
	for t := 0; t < trials; t++ {
		truthA := r.Intn(2) == 0
		src := pmfB
		if truthA {
			src = pmfA
		}
		for k := range obs {
			obs[k] = samplePMF(src, r)
		}
		if d.GuessA(obs) == truthA {
			correct++
		}
	}
	return float64(correct)/float64(trials) - 0.5, nil
}

// expVec exponentiates a log-PMF back to a PMF.
func expVec(logs []float64) []float64 {
	out := make([]float64, len(logs))
	for i, l := range logs {
		out[i] = math.Exp(l)
	}
	return out
}

// samplePMF draws one index by inverse transform.
func samplePMF(pmf []float64, r *rand.Rand) int {
	u := r.Float64()
	acc := 0.0
	for i, p := range pmf {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(pmf) - 1
}

// AdvantageBound returns the maximum advantage of ANY single-
// observation attacker against an epsilon-DP mechanism:
// TV/2 <= (e^eps - 1) / (2*(e^eps + 1)).
func AdvantageBound(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	e := math.Exp(eps)
	return (e - 1) / (2 * (e + 1))
}

// ComposedEpsilon returns the privacy budget consumed by k independent
// runs of an epsilon-DP mechanism on the same data (basic sequential
// composition): k*eps. A worker re-running the auction k times to
// average out the noise faces exactly this degradation, which is why
// the platform must account rounds against a global budget.
func ComposedEpsilon(eps float64, rounds int) float64 {
	if rounds <= 0 {
		return 0
	}
	return float64(rounds) * eps
}

// RoundsToDistinguish returns how many repeated observations an
// attacker needs before the composed advantage bound reaches the given
// target advantage in (0, 1/2): the smallest k with
// AdvantageBound(k*eps) >= target. It quantifies the privacy half-life
// of a repeated auction.
func RoundsToDistinguish(eps, target float64) (int, error) {
	if eps <= 0 || target <= 0 || target >= 0.5 {
		return 0, ErrBadArgument
	}
	// AdvantageBound(x) = target  <=>  e^x = (1+2t)/(1-2t).
	x := math.Log((1 + 2*target) / (1 - 2*target))
	k := int(math.Ceil(x / eps))
	if k < 1 {
		k = 1
	}
	return k, nil
}
