package privacy

import (
	"errors"
	"math"
	"testing"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/mechanism"
)

// sweepInstance is a small hand-built instance for the sweep tests.
func sweepInstance() core.Instance {
	return core.Instance{
		NumTasks:   3,
		Thresholds: []float64{0.45, 0.45, 0.45},
		Workers: []core.Worker{
			{ID: "a", Bundle: []int{0, 1}, Bid: 10},
			{ID: "b", Bundle: []int{1, 2}, Bid: 12},
			{ID: "c", Bundle: []int{0, 2}, Bid: 14},
			{ID: "d", Bundle: []int{0, 1, 2}, Bid: 20},
		},
		Skills: [][]float64{
			{0.95, 0.95, 0.5},
			{0.5, 0.95, 0.95},
			{0.95, 0.5, 0.95},
			{0.9, 0.9, 0.9},
		},
		Epsilon:   0.5,
		CMin:      5,
		CMax:      25,
		PriceGrid: core.PriceGridRange(5, 25, 1),
	}
}

func sweepPair(t *testing.T) (*core.Auction, *core.Auction, []float64) {
	t.Helper()
	instA := sweepInstance()
	instB := sweepInstance()
	instB.Workers[0].Bid = 24 // adjacent profile: one bid changes
	support := core.PriceGridRange(15, 25, 1)
	a, err := core.New(instA, core.WithPriceSet(support))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.New(instB, core.WithPriceSet(support))
	if err != nil {
		t.Fatal(err)
	}
	return a, b, support
}

func TestEpsilonSweepMatchesFreshBuilds(t *testing.T) {
	a, b, support := sweepPair(t)
	epsilons := []float64{0.1, 0.5, 2, 10, 100}
	points, err := EpsilonSweep(a, b, epsilons)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(epsilons) {
		t.Fatalf("got %d points, want %d", len(points), len(epsilons))
	}
	for i, pt := range points {
		if pt.Epsilon != epsilons[i] {
			t.Fatalf("point %d epsilon %v, want %v", i, pt.Epsilon, epsilons[i])
		}
		instA := sweepInstance()
		instA.Epsilon = epsilons[i]
		instB := sweepInstance()
		instB.Workers[0].Bid = 24
		instB.Epsilon = epsilons[i]
		fa, err := core.New(instA, core.WithPriceSet(support))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := core.New(instB, core.WithPriceSet(support))
		if err != nil {
			t.Fatal(err)
		}
		want, err := mechanism.MeasureLeakage(fa.Mechanism(), fb.Mechanism())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pt.Leakage.KL-want.KL) > 1e-12 ||
			math.Abs(pt.Leakage.TV-want.TV) > 1e-12 ||
			math.Abs(pt.Leakage.MaxLogRatio-want.MaxLogRatio) > 1e-12 {
			t.Errorf("eps=%v: sweep leakage %+v, fresh-build leakage %+v", pt.Epsilon, pt.Leakage, want)
		}
		if math.Abs(pt.ExpectedPayment-fa.ExpectedPayment()) > 1e-12 {
			t.Errorf("eps=%v: sweep payment %v, fresh %v", pt.Epsilon, pt.ExpectedPayment, fa.ExpectedPayment())
		}
		// Theorem 2: leakage respects the budget pointwise.
		if pt.Leakage.MaxLogRatio > epsilons[i]+1e-9 {
			t.Errorf("eps=%v: max log ratio %v exceeds budget", pt.Epsilon, pt.Leakage.MaxLogRatio)
		}
	}
	// Trade-off endpoints: more budget, more leakage, less payment.
	first, last := points[0], points[len(points)-1]
	if first.Leakage.KL > last.Leakage.KL {
		t.Errorf("leakage not increasing across sweep: %v -> %v", first.Leakage.KL, last.Leakage.KL)
	}
	if first.ExpectedPayment < last.ExpectedPayment {
		t.Errorf("payment not decreasing across sweep: %v -> %v", first.ExpectedPayment, last.ExpectedPayment)
	}
}

func TestEpsilonSweepArgumentValidation(t *testing.T) {
	a, b, _ := sweepPair(t)
	if _, err := EpsilonSweep(nil, b, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil A: got %v", err)
	}
	if _, err := EpsilonSweep(a, nil, []float64{1}); !errors.Is(err, ErrBadArgument) {
		t.Errorf("nil B: got %v", err)
	}
	if _, err := EpsilonSweep(a, b, nil); !errors.Is(err, ErrBadArgument) {
		t.Errorf("no epsilons: got %v", err)
	}
	if _, err := EpsilonSweep(a, b, []float64{1, -2}); !errors.Is(err, core.ErrBadEpsilon) {
		t.Errorf("bad epsilon: got %v", err)
	}
}
