// Package workload generates the simulation instances of the paper's
// evaluation (Table I, Settings I-IV): N workers with uniformly random
// bundles, skill levels, costs and error thresholds, and the candidate
// price grid of numbers spaced 0.1 apart in [35, 60].
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/stats"
)

// ErrBadParams reports inconsistent generator parameters.
var ErrBadParams = errors.New("workload: invalid parameters")

// Params describes one simulated instance family, mirroring a row of
// Table I.
type Params struct {
	// N and K are the worker and task counts.
	N, K int
	// Epsilon is the privacy budget.
	Epsilon float64
	// CMin and CMax bound worker costs; costs are drawn from the grid
	// spaced CostStep apart in [CMin, CMax].
	CMin, CMax, CostStep float64
	// BundleMin and BundleMax bound the interested-bundle size |Gamma|.
	BundleMin, BundleMax int
	// ThetaMin and ThetaMax bound the uniformly drawn skill levels.
	ThetaMin, ThetaMax float64
	// DeltaMin and DeltaMax bound the uniformly drawn per-task error
	// thresholds.
	DeltaMin, DeltaMax float64
	// PriceLo, PriceHi and PriceStep define the candidate price grid.
	PriceLo, PriceHi, PriceStep float64
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	switch {
	case p.N <= 0 || p.K <= 0:
		return fmt.Errorf("%w: N=%d K=%d", ErrBadParams, p.N, p.K)
	case p.CMin < 0 || p.CMax < p.CMin || p.CostStep <= 0:
		return fmt.Errorf("%w: cost range [%v,%v] step %v", ErrBadParams, p.CMin, p.CMax, p.CostStep)
	case p.BundleMin < 1 || p.BundleMax < p.BundleMin:
		return fmt.Errorf("%w: bundle size [%d,%d]", ErrBadParams, p.BundleMin, p.BundleMax)
	case p.ThetaMin < 0 || p.ThetaMax > 1 || p.ThetaMax < p.ThetaMin:
		return fmt.Errorf("%w: theta range [%v,%v]", ErrBadParams, p.ThetaMin, p.ThetaMax)
	case p.DeltaMin <= 0 || p.DeltaMax >= 1 || p.DeltaMax < p.DeltaMin:
		return fmt.Errorf("%w: delta range [%v,%v]", ErrBadParams, p.DeltaMin, p.DeltaMax)
	case p.PriceLo <= 0 || p.PriceHi < p.PriceLo || p.PriceStep <= 0:
		return fmt.Errorf("%w: price grid [%v,%v] step %v", ErrBadParams, p.PriceLo, p.PriceHi, p.PriceStep)
	case p.Epsilon <= 0:
		return fmt.Errorf("%w: epsilon=%v", ErrBadParams, p.Epsilon)
	}
	return nil
}

// Generate draws one instance from the family. Bundle sizes are capped
// at K so small-task-count variants of a setting remain valid.
func (p Params) Generate(r *rand.Rand) (core.Instance, error) {
	if err := p.Validate(); err != nil {
		return core.Instance{}, err
	}
	inst := core.Instance{
		NumTasks:   p.K,
		Thresholds: make([]float64, p.K),
		Workers:    make([]core.Worker, p.N),
		Skills:     make([][]float64, p.N),
		Epsilon:    p.Epsilon,
		CMin:       p.CMin,
		CMax:       p.CMax,
		PriceGrid:  core.PriceGridRange(p.PriceLo, p.PriceHi, p.PriceStep),
	}
	for j := range inst.Thresholds {
		inst.Thresholds[j] = stats.UniformIn(r, p.DeltaMin, p.DeltaMax)
	}
	bundleMax := p.BundleMax
	if bundleMax > p.K {
		bundleMax = p.K
	}
	bundleMin := p.BundleMin
	if bundleMin > bundleMax {
		bundleMin = bundleMax
	}
	for i := 0; i < p.N; i++ {
		size := stats.UniformIntIn(r, bundleMin, bundleMax)
		bundle := stats.SampleWithoutReplacement(r, p.K, size)
		sortInts(bundle)
		inst.Workers[i] = core.Worker{
			ID:     fmt.Sprintf("w%d", i),
			Bundle: bundle,
			Bid:    stats.UniformGrid(r, p.CMin, p.CMax, p.CostStep),
		}
		row := make([]float64, p.K)
		for j := range row {
			row[j] = stats.UniformIn(r, p.ThetaMin, p.ThetaMax)
		}
		inst.Skills[i] = row
	}
	return inst, nil
}

// sortInts is a tiny insertion sort; bundles are short and this avoids
// pulling sort into the hot generation loop for large N.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}

// base returns the parameter values shared by all four settings of
// Table I.
func base() Params {
	return Params{
		Epsilon:   0.1,
		CMin:      10,
		CMax:      60,
		CostStep:  0.1,
		ThetaMin:  0.1,
		ThetaMax:  0.9,
		DeltaMin:  0.1,
		DeltaMax:  0.2,
		PriceLo:   35,
		PriceHi:   60,
		PriceStep: 0.1,
	}
}

// SettingI is Table I row I: K=30 tasks, N in [80, 140] workers,
// bundles of 10-20 tasks.
func SettingI(n int) Params {
	p := base()
	p.N = n
	p.K = 30
	p.BundleMin, p.BundleMax = 10, 20
	return p
}

// SettingII is Table I row II: N=120 workers, K in [20, 50] tasks.
func SettingII(k int) Params {
	p := base()
	p.N = 120
	p.K = k
	p.BundleMin, p.BundleMax = 10, 20
	return p
}

// SettingIII is Table I row III: K=200 tasks, N in [800, 1400] workers,
// bundles of 50-150 tasks.
func SettingIII(n int) Params {
	p := base()
	p.N = n
	p.K = 200
	p.BundleMin, p.BundleMax = 50, 150
	return p
}

// SettingIV is Table I row IV: N=1000 workers, K in [200, 500] tasks.
func SettingIV(k int) Params {
	p := base()
	p.N = 1000
	p.K = k
	p.BundleMin, p.BundleMax = 50, 150
	return p
}

// Scaled returns a copy of p with worker and task counts multiplied by
// f (at least 1 each). The experiment harness uses it to shrink
// exact-optimal comparisons to sizes the branch-and-bound can prove
// within budget; EXPERIMENTS.md records the scales used.
func (p Params) Scaled(f float64) Params {
	q := p
	q.N = maxInt(1, int(float64(p.N)*f))
	q.K = maxInt(1, int(float64(p.K)*f))
	if q.BundleMax > q.K {
		q.BundleMax = q.K
	}
	if q.BundleMin > q.BundleMax {
		q.BundleMin = q.BundleMax
	}
	return q
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
