package workload

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestArrivalsShapes(t *testing.T) {
	const n = 2000
	window := 10 * time.Second
	for _, curve := range []ArrivalCurve{ArrivalUniform, ArrivalBurst, ArrivalRamp, ArrivalPoisson, ""} {
		offs, err := Arrivals(rand.New(rand.NewSource(1)), n, window, curve)
		if err != nil {
			t.Fatalf("%q: %v", curve, err)
		}
		if len(offs) != n {
			t.Fatalf("%q: got %d offsets, want %d", curve, len(offs), n)
		}
		for i, o := range offs {
			if o < 0 || o >= window {
				t.Fatalf("%q: offset %d = %v outside [0, %v)", curve, i, o, window)
			}
			if i > 0 && o < offs[i-1] {
				t.Fatalf("%q: offsets not sorted at %d", curve, i)
			}
		}
	}
}

func TestArrivalsDeterministic(t *testing.T) {
	window := 5 * time.Second
	for _, curve := range []ArrivalCurve{ArrivalUniform, ArrivalBurst, ArrivalRamp, ArrivalPoisson} {
		a, err := Arrivals(rand.New(rand.NewSource(7)), 500, window, curve)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Arrivals(rand.New(rand.NewSource(7)), 500, window, curve)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: same seed diverged at %d: %v vs %v", curve, i, a[i], b[i])
			}
		}
	}
}

// TestArrivalsBurstConcentration: the burst curve packs the whole fleet
// into the first 10% of the window; the ramp curve's median lands past
// the midpoint (density grows toward the deadline).
func TestArrivalsBurstConcentration(t *testing.T) {
	window := 10 * time.Second
	burst, err := Arrivals(rand.New(rand.NewSource(3)), 1000, window, ArrivalBurst)
	if err != nil {
		t.Fatal(err)
	}
	if last := burst[len(burst)-1]; last > window/10 {
		t.Fatalf("burst arrival at %v, want all within the first %v", last, window/10)
	}
	ramp, err := Arrivals(rand.New(rand.NewSource(3)), 1001, window, ArrivalRamp)
	if err != nil {
		t.Fatal(err)
	}
	if med := ramp[len(ramp)/2]; med <= window/2 {
		t.Fatalf("ramp median %v not past the window midpoint", med)
	}
}

func TestArrivalsBadParams(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := Arrivals(r, -1, time.Second, ArrivalUniform); !errors.Is(err, ErrBadParams) {
		t.Fatalf("n=-1: %v, want ErrBadParams", err)
	}
	if _, err := Arrivals(r, 1, 0, ArrivalUniform); !errors.Is(err, ErrBadParams) {
		t.Fatalf("window=0: %v, want ErrBadParams", err)
	}
	if _, err := Arrivals(r, 1, time.Second, ArrivalCurve("sawtooth")); !errors.Is(err, ErrBadParams) {
		t.Fatalf("unknown curve: %v, want ErrBadParams", err)
	}
	offs, err := Arrivals(r, 0, time.Second, ArrivalPoisson)
	if err != nil || len(offs) != 0 {
		t.Fatalf("n=0: offs=%v err=%v, want empty success", offs, err)
	}
}
