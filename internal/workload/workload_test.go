package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/dphsrc/dphsrc/internal/core"
)

func TestSettingsMatchTableI(t *testing.T) {
	cases := []struct {
		name                 string
		p                    Params
		n, k                 int
		bundleMin, bundleMax int
	}{
		{"I", SettingI(100), 100, 30, 10, 20},
		{"II", SettingII(40), 120, 40, 10, 20},
		{"III", SettingIII(1000), 1000, 200, 50, 150},
		{"IV", SettingIV(300), 1000, 300, 50, 150},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.p
			if p.N != tc.n || p.K != tc.k {
				t.Errorf("N,K = %d,%d want %d,%d", p.N, p.K, tc.n, tc.k)
			}
			if p.BundleMin != tc.bundleMin || p.BundleMax != tc.bundleMax {
				t.Errorf("bundle = [%d,%d] want [%d,%d]", p.BundleMin, p.BundleMax, tc.bundleMin, tc.bundleMax)
			}
			if p.Epsilon != 0.1 || p.CMin != 10 || p.CMax != 60 {
				t.Errorf("shared params wrong: %+v", p)
			}
			if p.PriceLo != 35 || p.PriceHi != 60 || p.PriceStep != 0.1 {
				t.Errorf("price grid wrong: %+v", p)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("setting invalid: %v", err)
			}
		})
	}
}

func TestValidateRejections(t *testing.T) {
	base := SettingI(100)
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero N", func(p *Params) { p.N = 0 }},
		{"zero K", func(p *Params) { p.K = 0 }},
		{"cost range", func(p *Params) { p.CMax = p.CMin - 1 }},
		{"cost step", func(p *Params) { p.CostStep = 0 }},
		{"bundle min", func(p *Params) { p.BundleMin = 0 }},
		{"bundle order", func(p *Params) { p.BundleMax = p.BundleMin - 1 }},
		{"theta range", func(p *Params) { p.ThetaMax = 1.5 }},
		{"delta low", func(p *Params) { p.DeltaMin = 0 }},
		{"delta high", func(p *Params) { p.DeltaMax = 1 }},
		{"price grid", func(p *Params) { p.PriceStep = 0 }},
		{"epsilon", func(p *Params) { p.Epsilon = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); !errors.Is(err, ErrBadParams) {
				t.Errorf("want ErrBadParams, got %v", err)
			}
			if _, err := p.Generate(rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadParams) {
				t.Errorf("Generate should reject too, got %v", err)
			}
		})
	}
}

func TestGenerateProducesValidInstances(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, p := range []Params{SettingI(80), SettingII(20)} {
		inst, err := p.Generate(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v", err)
		}
		if len(inst.Workers) != p.N || inst.NumTasks != p.K {
			t.Errorf("size mismatch: %d workers %d tasks", len(inst.Workers), inst.NumTasks)
		}
		for i, w := range inst.Workers {
			if len(w.Bundle) < p.BundleMin || len(w.Bundle) > p.BundleMax {
				t.Errorf("worker %d bundle size %d outside [%d,%d]", i, len(w.Bundle), p.BundleMin, p.BundleMax)
			}
			steps := (w.Bid - p.CMin) / p.CostStep
			if math.Abs(steps-math.Round(steps)) > 1e-6 {
				t.Errorf("worker %d bid %v off the cost grid", i, w.Bid)
			}
		}
		for j, d := range inst.Thresholds {
			if d < p.DeltaMin || d > p.DeltaMax {
				t.Errorf("task %d delta %v outside [%v,%v]", j, d, p.DeltaMin, p.DeltaMax)
			}
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p := SettingI(90)
	a, err := p.Generate(rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Workers {
		if a.Workers[i].Bid != b.Workers[i].Bid {
			t.Fatal("same seed produced different instances")
		}
	}
}

func TestGeneratedSettingIIsAuctionFeasible(t *testing.T) {
	// The paper's evaluation depends on Setting I instances being
	// feasible at the price grid; verify across seeds.
	for seed := int64(0); seed < 5; seed++ {
		p := SettingI(80)
		inst, err := p.Generate(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.New(inst); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBundleCappedAtK(t *testing.T) {
	p := SettingII(12) // K=12 < BundleMax=20
	inst, err := p.Generate(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range inst.Workers {
		if len(w.Bundle) > 12 {
			t.Fatalf("worker %d bundle %d exceeds K", i, len(w.Bundle))
		}
	}
}

func TestScaled(t *testing.T) {
	p := SettingIII(800).Scaled(0.1)
	if p.N != 80 || p.K != 20 {
		t.Errorf("scaled N,K = %d,%d want 80,20", p.N, p.K)
	}
	if p.BundleMax > p.K {
		t.Errorf("scaled bundle max %d exceeds K %d", p.BundleMax, p.K)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("scaled params invalid: %v", err)
	}
	tinyp := SettingI(10).Scaled(0.001)
	if tinyp.N < 1 || tinyp.K < 1 {
		t.Error("scaling must floor at 1")
	}
}
