package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// ArrivalCurve names a synthetic worker arrival shape over a bid
// window. The load generator uses these to schedule when each of its
// fleet's workers dials in.
type ArrivalCurve string

// Supported arrival curves.
const (
	// ArrivalUniform spreads arrivals evenly across the window.
	ArrivalUniform ArrivalCurve = "uniform"
	// ArrivalBurst packs all arrivals into the first 10% of the
	// window — the reconnect-storm / thundering-herd shape.
	ArrivalBurst ArrivalCurve = "burst"
	// ArrivalRamp densifies arrivals linearly toward the window's end
	// (deadline-chasing workers).
	ArrivalRamp ArrivalCurve = "ramp"
	// ArrivalPoisson models memoryless arrivals: exponential gaps
	// renormalized to fit the window.
	ArrivalPoisson ArrivalCurve = "poisson"
)

// Arrivals draws n worker arrival offsets within a bid window of the
// given length, shaped by curve and sorted ascending. Offsets are in
// [0, window); the draw is deterministic in r.
func Arrivals(r *rand.Rand, n int, window time.Duration, curve ArrivalCurve) ([]time.Duration, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadParams, n)
	}
	if window <= 0 {
		return nil, fmt.Errorf("%w: window=%v", ErrBadParams, window)
	}
	w := float64(window)
	offs := make([]float64, n)
	switch curve {
	case ArrivalUniform, "":
		for i := range offs {
			offs[i] = r.Float64() * w
		}
	case ArrivalBurst:
		for i := range offs {
			offs[i] = r.Float64() * w * 0.1
		}
	case ArrivalRamp:
		// Density f(t) ∝ t on [0,1]: invert the CDF t² with a square
		// root, so draws crowd toward the end of the window.
		for i := range offs {
			offs[i] = math.Sqrt(r.Float64()) * w
		}
	case ArrivalPoisson:
		// Exponential inter-arrival gaps, renormalized so the last
		// arrival lands inside the window.
		total := 0.0
		gaps := make([]float64, n)
		for i := range gaps {
			gaps[i] = r.ExpFloat64()
			total += gaps[i]
		}
		at := 0.0
		for i, g := range gaps {
			at += g
			if total > 0 {
				offs[i] = at / total * w * float64(n) / float64(n+1)
			}
		}
	default:
		return nil, fmt.Errorf("%w: arrival curve %q", ErrBadParams, curve)
	}
	out := make([]time.Duration, n)
	for i, o := range offs {
		if o >= w {
			o = w - 1
		}
		out[i] = time.Duration(o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
