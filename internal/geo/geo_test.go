package geo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dphsrc/dphsrc/internal/core"
)

func TestNewRoadNetworkValidation(t *testing.T) {
	if _, err := NewRoadNetwork(1, 5); !errors.Is(err, ErrBadGrid) {
		t.Errorf("narrow grid: got %v", err)
	}
	if _, err := NewRoadNetwork(5, 1); !errors.Is(err, ErrBadGrid) {
		t.Errorf("short grid: got %v", err)
	}
	n, err := NewRoadNetwork(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 4x3 grid: vertical 4*(3-1)=8, horizontal (4-1)*3=9 -> 17.
	if got := n.NumSegments(); got != 17 {
		t.Errorf("segments = %d, want 17", got)
	}
}

func TestSegmentIndicesDisjointAndComplete(t *testing.T) {
	n, err := NewRoadNetwork(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for y := 0; y < n.Height-1; y++ {
		for x := 0; x < n.Width; x++ {
			idx := n.segmentDown(x, y)
			if seen[idx] {
				t.Fatalf("duplicate vertical segment index %d", idx)
			}
			seen[idx] = true
		}
	}
	for y := 0; y < n.Height; y++ {
		for x := 0; x < n.Width-1; x++ {
			idx := n.segmentRight(x, y)
			if seen[idx] {
				t.Fatalf("duplicate horizontal segment index %d", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != n.NumSegments() {
		t.Fatalf("covered %d indices, want %d", len(seen), n.NumSegments())
	}
	for idx := range seen {
		if idx < 0 || idx >= n.NumSegments() {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestRandomCommuteConnectsAndIsValid(t *testing.T) {
	n, err := NewRoadNetwork(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		c := n.RandomCommute(r)
		if len(c.Segments) == 0 {
			t.Fatal("empty commute")
		}
		if c.Length < len(c.Segments) {
			t.Fatalf("length %d below unique segments %d", c.Length, len(c.Segments))
		}
		prev := -1
		for _, s := range c.Segments {
			if s <= prev {
				t.Fatalf("segments not sorted/unique: %v", c.Segments)
			}
			if s < 0 || s >= n.NumSegments() {
				t.Fatalf("segment %d out of range", s)
			}
			prev = s
		}
	}
}

func TestRandomCommuteQuick(t *testing.T) {
	n, err := NewRoadNetwork(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		c := n.RandomCommute(rand.New(rand.NewSource(seed)))
		// An L-shaped Manhattan route visits at most (W-1)+(H-1)
		// segments.
		return len(c.Segments) >= 1 && len(c.Segments) <= (n.Width-1)+(n.Height-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func defaultParams() WorkloadParams {
	return WorkloadParams{
		Workers:        150,
		Epsilon:        0.1,
		CMin:           5,
		CMax:           60,
		Delta:          0.4,
		CostPerSegment: 2,
		SkillMin:       0.8,
		SkillMax:       0.95,
		PriceLo:        20,
		PriceHi:        60,
		PriceStep:      0.5,
	}
}

func TestInstanceFromNetwork(t *testing.T) {
	n, err := NewRoadNetwork(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	inst, err := n.InstanceFromNetwork(defaultParams(), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if inst.NumTasks != n.NumSegments() {
		t.Errorf("tasks %d, want %d", inst.NumTasks, n.NumSegments())
	}
	// Off-route skills must be uninformative, on-route within range.
	for i, w := range inst.Workers {
		onRoute := make(map[int]bool)
		for _, j := range w.Bundle {
			onRoute[j] = true
		}
		for j, theta := range inst.Skills[i] {
			if onRoute[j] {
				if theta < 0.8 || theta > 0.95 {
					t.Fatalf("worker %d on-route skill %v", i, theta)
				}
			} else if theta != 0.5 {
				t.Fatalf("worker %d off-route skill %v, want 0.5", i, theta)
			}
		}
		if w.Bid < inst.CMin || w.Bid > inst.CMax {
			t.Fatalf("worker %d bid %v outside range", i, w.Bid)
		}
	}
}

func TestInstanceFromNetworkRunsAuction(t *testing.T) {
	// End to end: a dense-enough commuter population admits a feasible
	// DP-hSRC auction over the road network.
	n, err := NewRoadNetwork(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	params := defaultParams()
	params.Workers = 300
	var auction *core.Auction
	for attempt := 0; attempt < 10 && auction == nil; attempt++ {
		inst, err := n.InstanceFromNetwork(params, r)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.New(inst)
		if err == nil {
			auction = a
		} else if !errors.Is(err, core.ErrInfeasible) {
			t.Fatal(err)
		}
	}
	if auction == nil {
		t.Fatal("no feasible geotagging instance in 10 attempts")
	}
	out := auction.Run(r)
	if len(out.Winners) == 0 {
		t.Fatal("no winners")
	}
}

func TestInstanceFromNetworkValidation(t *testing.T) {
	n, err := NewRoadNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	bad := defaultParams()
	bad.Workers = 0
	if _, err := n.InstanceFromNetwork(bad, r); !errors.Is(err, ErrBadGrid) {
		t.Errorf("zero workers: got %v", err)
	}
	bad = defaultParams()
	bad.Delta = 1
	if _, err := n.InstanceFromNetwork(bad, r); !errors.Is(err, ErrBadGrid) {
		t.Errorf("delta 1: got %v", err)
	}
	bad = defaultParams()
	bad.SkillMax = 1.2
	if _, err := n.InstanceFromNetwork(bad, r); !errors.Is(err, ErrBadGrid) {
		t.Errorf("skill range: got %v", err)
	}
}

func TestCoverageHeat(t *testing.T) {
	n, err := NewRoadNetwork(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	inst, err := n.InstanceFromNetwork(defaultParams(), r)
	if err != nil {
		t.Fatal(err)
	}
	heat := CoverageHeat(inst)
	if len(heat) != inst.NumTasks {
		t.Fatalf("heat length %d", len(heat))
	}
	total := 0
	for _, h := range heat {
		total += h
	}
	wantTotal := 0
	for _, w := range inst.Workers {
		wantTotal += len(w.Bundle)
	}
	if total != wantTotal {
		t.Errorf("heat sum %d, want %d", total, wantTotal)
	}
}
