// Package geo generates spatially structured MCS workloads, modeling
// the geotagging systems that motivate the paper (pothole mapping,
// road-condition tagging): tasks are road segments on a grid network,
// and each worker's bidding bundle is the set of segments along a
// commute route, so bundles are spatially correlated rather than
// uniform — exactly the structure that makes bid bundles privacy-
// sensitive (a bundle reveals where its worker drives).
package geo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/dphsrc/dphsrc/internal/core"
)

// ErrBadGrid reports invalid road-network parameters.
var ErrBadGrid = errors.New("geo: invalid road network parameters")

// RoadNetwork is a W x H grid of intersections; every edge between
// adjacent intersections is one road segment (a binary classification
// task: "does this segment need repair?").
type RoadNetwork struct {
	Width, Height int
	// horizontalBase is the task-index offset of horizontal segments;
	// vertical segments come first.
	horizontalBase int
}

// NewRoadNetwork builds a grid road network. Both dimensions must be at
// least 2 so the network has segments in both directions.
func NewRoadNetwork(width, height int) (*RoadNetwork, error) {
	if width < 2 || height < 2 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadGrid, width, height)
	}
	return &RoadNetwork{
		Width:          width,
		Height:         height,
		horizontalBase: width * (height - 1),
	}, nil
}

// NumSegments returns the number of road segments (tasks).
func (n *RoadNetwork) NumSegments() int {
	vertical := n.Width * (n.Height - 1)
	horizontal := (n.Width - 1) * n.Height
	return vertical + horizontal
}

// segmentDown returns the task index of the segment below intersection
// (x, y), i.e. between (x,y) and (x,y+1).
func (n *RoadNetwork) segmentDown(x, y int) int {
	return y*n.Width + x
}

// segmentRight returns the task index of the segment to the right of
// intersection (x, y), i.e. between (x,y) and (x+1,y).
func (n *RoadNetwork) segmentRight(x, y int) int {
	return n.horizontalBase + y*(n.Width-1) + x
}

// Commute is a worker's route through the network.
type Commute struct {
	// Segments are the traversed segment (task) indices, sorted and
	// deduplicated — the worker's bidding bundle.
	Segments []int
	// Length is the number of segment traversals (with repeats), a
	// natural cost driver.
	Length int
}

// RandomCommute draws an L-shaped commute (the Manhattan path of a
// random origin-destination pair, as a taxi or commuter would drive):
// horizontal to the destination column, then vertical to the
// destination row. Origin and destination are distinct intersections.
func (n *RoadNetwork) RandomCommute(r *rand.Rand) Commute {
	ox, oy := r.Intn(n.Width), r.Intn(n.Height)
	dx, dy := r.Intn(n.Width), r.Intn(n.Height)
	for ox == dx && oy == dy {
		dx, dy = r.Intn(n.Width), r.Intn(n.Height)
	}
	var segs []int
	x, y := ox, oy
	for x != dx {
		if dx > x {
			segs = append(segs, n.segmentRight(x, y))
			x++
		} else {
			segs = append(segs, n.segmentRight(x-1, y))
			x--
		}
	}
	for y != dy {
		if dy > y {
			segs = append(segs, n.segmentDown(x, y))
			y++
		} else {
			segs = append(segs, n.segmentDown(x, y-1))
			y--
		}
	}
	length := len(segs)
	sort.Ints(segs)
	segs = dedupeSortedInts(segs)
	return Commute{Segments: segs, Length: length}
}

// dedupeSortedInts removes adjacent duplicates in place.
func dedupeSortedInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// WorkloadParams configures InstanceFromNetwork.
type WorkloadParams struct {
	// Workers is the number of commuters.
	Workers int
	// Epsilon, cost range and per-segment error threshold.
	Epsilon    float64
	CMin, CMax float64
	Delta      float64
	// CostPerSegment prices a commute: cost = base + CostPerSegment *
	// route length, clamped into [CMin, CMax] and snapped to the 0.1
	// cost grid.
	CostPerSegment float64
	// SkillMin and SkillMax bound workers' per-segment accuracy.
	SkillMin, SkillMax float64
	// PriceLo, PriceHi, PriceStep define the candidate price grid.
	PriceLo, PriceHi, PriceStep float64
}

// validate checks the parameters.
func (p WorkloadParams) validate() error {
	switch {
	case p.Workers < 1:
		return fmt.Errorf("%w: %d workers", ErrBadGrid, p.Workers)
	case p.Epsilon <= 0:
		return fmt.Errorf("%w: epsilon %v", ErrBadGrid, p.Epsilon)
	case p.CMin < 0 || p.CMax < p.CMin:
		return fmt.Errorf("%w: cost range [%v,%v]", ErrBadGrid, p.CMin, p.CMax)
	case p.Delta <= 0 || p.Delta >= 1:
		return fmt.Errorf("%w: delta %v", ErrBadGrid, p.Delta)
	case p.SkillMin < 0 || p.SkillMax > 1 || p.SkillMax < p.SkillMin:
		return fmt.Errorf("%w: skill range [%v,%v]", ErrBadGrid, p.SkillMin, p.SkillMax)
	case p.PriceLo <= 0 || p.PriceHi < p.PriceLo || p.PriceStep <= 0:
		return fmt.Errorf("%w: price grid", ErrBadGrid)
	}
	return nil
}

// InstanceFromNetwork draws a geotagging auction instance: every worker
// gets a random commute as her bundle, a cost proportional to its
// length, and a scalar accuracy applied to her segments. Returned
// instances are valid by construction but not necessarily feasible —
// spatially clustered commutes can leave remote segments uncovered,
// which is realistic and should be handled by the caller (the paper's
// feasible price set P excludes uncoverable configurations).
func (n *RoadNetwork) InstanceFromNetwork(p WorkloadParams, r *rand.Rand) (core.Instance, error) {
	if err := p.validate(); err != nil {
		return core.Instance{}, err
	}
	k := n.NumSegments()
	inst := core.Instance{
		NumTasks:   k,
		Thresholds: make([]float64, k),
		Workers:    make([]core.Worker, p.Workers),
		Skills:     make([][]float64, p.Workers),
		Epsilon:    p.Epsilon,
		CMin:       p.CMin,
		CMax:       p.CMax,
		PriceGrid:  core.PriceGridRange(p.PriceLo, p.PriceHi, p.PriceStep),
	}
	for j := range inst.Thresholds {
		inst.Thresholds[j] = p.Delta
	}
	for i := 0; i < p.Workers; i++ {
		commute := n.RandomCommute(r)
		cost := p.CMin + p.CostPerSegment*float64(commute.Length)
		if cost > p.CMax {
			cost = p.CMax
		}
		cost = math.Round(cost*10) / 10
		accuracy := p.SkillMin + r.Float64()*(p.SkillMax-p.SkillMin)
		row := make([]float64, k)
		for j := range row {
			row[j] = 0.5 // uninformative off-route
		}
		for _, j := range commute.Segments {
			row[j] = accuracy
		}
		inst.Workers[i] = core.Worker{
			ID:     fmt.Sprintf("commuter-%03d", i),
			Bundle: commute.Segments,
			Bid:    cost,
		}
		inst.Skills[i] = row
	}
	if err := inst.Validate(); err != nil {
		return core.Instance{}, fmt.Errorf("geo: generated instance invalid: %w", err)
	}
	return inst, nil
}

// CoverageHeat returns, per segment, how many workers' bundles include
// it — the spatial demand-supply picture a platform would inspect when
// tuning thresholds.
func CoverageHeat(inst core.Instance) []int {
	heat := make([]int, inst.NumTasks)
	for _, w := range inst.Workers {
		for _, j := range w.Bundle {
			heat[j]++
		}
	}
	return heat
}
