package console

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dphsrc/dphsrc/internal/core"
	"github.com/dphsrc/dphsrc/internal/crowd"
	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/protocol"
	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// TestConsoleOverLivePlatform is the acceptance test: a real sharded
// platform runs real rounds with real worker clients, and the console
// mounted over it must (a) report a cumulative epsilon bit-for-bit
// equal to FoldBudget over the full event stream, and (b) never serve
// a byte containing a worker's bid value.
func TestConsoleOverLivePlatform(t *testing.T) {
	// Sentinel bid costs: off the price grid (integers 10..30), so no
	// legitimate console output — clearing prices, counts, epsilons —
	// can collide with them.
	costs := []float64{13.37, 14.37, 15.37, 16.37, 17.37, 18.37}

	reg := telemetry.NewRegistry()
	tail := evlog.NewTailBuffer(256)
	lg := evlog.New(evlog.WithTail(tail))
	acct, err := mechanism.NewAccountant(3)
	if err != nil {
		t.Fatal(err)
	}
	acct.Instrument(reg)
	acct.ObserveEvents(lg)

	cfg := protocol.PlatformConfig{
		NumTasks:   4,
		Thresholds: []float64{0.3, 0.3, 0.3, 0.3},
		Epsilon:    0.5,
		CMin:       5,
		CMax:       30,
		PriceGrid:  core.PriceGridRange(10, 30, 1),
		Skills: func(workerID string, n int) []float64 {
			row := make([]float64, n)
			for j := range row {
				row[j] = 0.92
			}
			return row
		},
		BidWindow:  2 * time.Second,
		MinWorkers: len(costs),
		IOTimeout:  2 * time.Second,
		Seed:       42,
		Accountant: acct,
		Events:     lg,
		Telemetry:  reg,
		Shards:     2,
	}
	platform, err := protocol.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for round := 0; round < 2; round++ {
		done := make(chan error, 1)
		go func() {
			_, err := platform.RunRound(ctx, ln)
			done <- err
		}()
		var wg sync.WaitGroup
		for i, cost := range costs {
			wg.Add(1)
			go func(i int, cost float64) {
				defer wg.Done()
				_, err := protocol.Participate(ctx, ln.Addr().String(), protocol.WorkerConfig{
					ID:        string(rune('A' + i)),
					Bundle:    []int{0, 1, 2, 3},
					Cost:      cost,
					Labels:    func(task int) crowd.Label { return crowd.Positive },
					IOTimeout: 2 * time.Second,
				})
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}(i, cost)
		}
		wg.Wait()
		if err := <-done; err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	srv := New(Config{
		Status: func() Status {
			st := platform.Status()
			return Status{Round: st.Round, Phase: st.Phase}
		},
		Metrics:    reg,
		Events:     tail,
		Accountant: acct,
		ShardStats: platform.ShardStats,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var o Overview
	getJSON(t, ts, "/api/overview", &o)

	// Fold the complete event stream exactly as an offline auditor
	// would, and demand bitwise agreement with what the console served.
	var stream bytes.Buffer
	if err := lg.WriteJSONL(&stream); err != nil {
		t.Fatal(err)
	}
	events, err := evlog.ReadJSONL(&stream)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := evlog.FoldBudget(events)
	if err != nil {
		t.Fatal(err)
	}
	if o.Budget == nil {
		t.Fatal("live platform served no budget panel")
	}
	if o.Budget.Spent != folded.CumulativeEpsilon {
		t.Errorf("console spent %v != FoldBudget %v (must be bit-for-bit)",
			o.Budget.Spent, folded.CumulativeEpsilon)
	}
	if o.Budget.Ledger.CumulativeEpsilon != folded.CumulativeEpsilon {
		t.Errorf("console ledger fold %v != offline fold %v",
			o.Budget.Ledger.CumulativeEpsilon, folded.CumulativeEpsilon)
	}
	if o.Budget.Spent != acct.Spent() {
		t.Errorf("console spent %v != accountant %v", o.Budget.Spent, acct.Spent())
	}
	if folded.Releases != 2 {
		t.Errorf("releases = %d, want one debit per round", folded.Releases)
	}

	if o.Rounds.Completed != 2 || o.Bids.Accepted != int64(2*len(costs)) {
		t.Errorf("rounds/bids = %+v / %+v", o.Rounds, o.Bids)
	}
	if st := o.Status; st.Phase != "idle" {
		t.Errorf("status = %+v, want idle between rounds", st)
	}
	if len(o.Shards) != 2 {
		t.Fatalf("shards = %+v", o.Shards)
	}
	var admitted int64
	for _, s := range o.Shards {
		admitted += s.Admitted
	}
	if admitted != int64(2*len(costs)) {
		t.Errorf("shard admissions = %d, want %d", admitted, 2*len(costs))
	}

	// No byte served by any console route may contain a bid value.
	for _, path := range []string{"/", "/rounds", "/events?limit=500", "/api/overview", "/api/rounds", "/api/events?limit=500"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, cost := range []string{"13.37", "14.37", "15.37", "16.37", "17.37", "18.37"} {
			if strings.Contains(string(body), cost) {
				t.Errorf("GET %s leaked bid cost %s", path, cost)
			}
		}
	}
}
