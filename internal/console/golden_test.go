package console

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden pages from the current renderer output.
var updateGolden = flag.Bool("update", false, "rewrite golden console pages")

// TestGoldenPages pins every rendered console page byte-for-byte over
// the deterministic fixture. The pages embed SVG charts, timestamps and
// float formatting, so any rendering drift — intentional or not —
// shows up as a golden diff. Refresh with:
//
//	go test ./internal/console/ -run TestGoldenPages -update
func TestGoldenPages(t *testing.T) {
	srv := fixture(t)
	pages := []struct {
		name string
		got  string
	}{
		{"overview", srv.renderOverview()},
		{"rounds", srv.renderRounds()},
		{"events", srv.renderEvents(eventsQuery{limit: defaultEventsLimit})},
	}
	for _, p := range pages {
		path := filepath.Join("testdata", p.name+".golden.html")
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(p.got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", p.name, err)
		}
		if p.got != string(want) {
			t.Errorf("%s page drifted from golden; run with -update and review the diff", p.name)
		}
	}

	// The renderer itself must be deterministic, or the goldens are
	// meaningless: render twice, byte-compare.
	if srv.renderOverview() != pages[0].got {
		t.Error("renderOverview is not deterministic")
	}
	if srv.renderEvents(eventsQuery{limit: defaultEventsLimit}) != pages[2].got {
		t.Error("renderEvents is not deterministic")
	}
}
