package console

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dphsrc/dphsrc/internal/plot"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// sortedKeys fixes the field rendering order for event tables.
func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pageStyle is the console's entire stylesheet, inlined so pages are
// self-contained (no assets to serve, nothing to cache-bust).
const pageStyle = `<style>
body{font-family:sans-serif;margin:0;background:#f5f6f7;color:#1c2733}
header{background:#1c2733;color:#fff;padding:10px 20px;display:flex;gap:18px;align-items:baseline}
header h1{font-size:17px;margin:0}
header a{color:#9fc3e8;text-decoration:none;font-size:14px}
main{padding:16px 20px;max-width:1100px}
section{background:#fff;border:1px solid #dbe0e4;border-radius:6px;padding:12px 16px;margin-bottom:16px}
section h2{font-size:14px;margin:0 0 8px;text-transform:uppercase;letter-spacing:.06em;color:#4a5863}
table{border-collapse:collapse;font-size:13px}
th,td{border:1px solid #dbe0e4;padding:4px 10px;text-align:right}
th{background:#eef1f3;text-align:center}
td.l,th.l{text-align:left}
.kv{display:flex;flex-wrap:wrap;gap:6px 28px;font-size:13px}
.kv div b{display:block;font-size:11px;color:#667683;font-weight:600;text-transform:uppercase}
.ok{color:#177245}.warn{color:#9a6a00}.bad{color:#b00020}
svg{max-width:100%;height:auto}
.muted{color:#667683;font-size:12px}
</style>`

// htmlEscape sanitizes untrusted text for HTML text nodes and
// attribute values. Event names and field payloads pass through here
// even though the evlog schema already restricts them — defense in
// depth costs nothing.
func htmlEscape(s string) string {
	return strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;").Replace(s)
}

// ftoa renders a float the way the JSON endpoints do, so the HTML and
// API views of the same number are digit-identical.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// stamp renders an event timestamp for tables.
func stamp(unixNs int64) string {
	return time.Unix(0, unixNs).UTC().Format("15:04:05.000")
}

// pageHead opens an HTML page with the shared chrome.
func pageHead(b *strings.Builder, title string) {
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	fmt.Fprintf(b, "<title>%s</title>", htmlEscape(title))
	b.WriteString(pageStyle)
	b.WriteString("</head>\n<body><header><h1>mcs-platform console</h1>")
	b.WriteString(`<a href="/">overview</a><a href="/rounds">rounds</a><a href="/events">events</a>`)
	b.WriteString("</header>\n<main>\n")
}

// pageFoot closes it.
func pageFoot(b *strings.Builder, generatedUnixNs int64) {
	fmt.Fprintf(b, "<p class=\"muted\">generated %s UTC · schema %s</p>\n",
		time.Unix(0, generatedUnixNs).UTC().Format(time.RFC3339Nano), SchemaV1)
	b.WriteString("</main></body></html>\n")
}

// renderOverview builds the overview page from the same aggregate the
// JSON endpoint serves, so the two views cannot drift.
func (s *Server) renderOverview() string {
	o := s.Overview()
	var b strings.Builder
	pageHead(&b, "mcs-platform console")

	// Status strip.
	b.WriteString("<section><h2>Status</h2><div class=\"kv\">\n")
	fmt.Fprintf(&b, "<div><b>round</b>%d</div>", o.Status.Round)
	fmt.Fprintf(&b, "<div><b>phase</b>%s</div>", htmlEscape(o.Status.Phase))
	if o.RoundsTotal > 0 {
		fmt.Fprintf(&b, "<div><b>campaign</b>%d rounds from %d</div>", o.RoundsTotal, o.StartRound)
	}
	fmt.Fprintf(&b, "<div><b>uptime</b>%.1fs</div>", o.UptimeSeconds)
	fmt.Fprintf(&b, "<div><b>connections</b>%s</div>", ftoa(o.ConnectionsActive))
	fmt.Fprintf(&b, "<div><b>rounds ok/deg/fail</b>%d / %d / %d</div>",
		o.Rounds.Completed, o.Rounds.Degraded, o.Rounds.Failed)
	fmt.Fprintf(&b, "<div><b>quorum failures</b>%d</div>", o.QuorumFailures)
	b.WriteString("</div></section>\n")

	// Budget burn-down.
	if o.Budget != nil {
		bd := o.Budget
		b.WriteString("<section><h2>DP budget</h2><div class=\"kv\">\n")
		fmt.Fprintf(&b, "<div><b>spent</b>%s</div>", ftoa(bd.Spent))
		if bd.Metered {
			fmt.Fprintf(&b, "<div><b>remaining</b>%s</div>", ftoa(bd.Remaining))
			fmt.Fprintf(&b, "<div><b>total</b>%s</div>", ftoa(bd.Total))
		}
		fmt.Fprintf(&b, "<div><b>releases</b>%d</div>", bd.Releases)
		fmt.Fprintf(&b, "<div><b>refusals</b>%d</div>", bd.Refusals)
		fmt.Fprintf(&b, "<div><b>ledger fold</b>%s</div>", ftoa(bd.Ledger.CumulativeEpsilon))
		if bd.Metered {
			if bd.Spent == bd.Ledger.CumulativeEpsilon {
				b.WriteString(`<div><b>reconciled</b><span class="ok">exact</span></div>`)
			} else {
				b.WriteString(`<div><b>reconciled</b><span class="bad">MISMATCH</span></div>`)
			}
		}
		b.WriteString("</div>\n")
		s.writeBurnDown(&b, bd)
		b.WriteString("</section>\n")
	}

	// Shards.
	if len(o.Shards) > 0 {
		b.WriteString("<section><h2>Shards</h2><table><tr>" +
			"<th class=\"l\">partition</th><th>pending</th><th>queue depth</th>" +
			"<th>admitted</th><th>overloads</th><th>killed</th></tr>\n")
		for _, sh := range o.Shards {
			cls := ""
			if sh.Overloads > 0 {
				cls = ` class="warn"`
			}
			if sh.Killed > 0 {
				cls = ` class="bad"`
			}
			fmt.Fprintf(&b, "<tr%s><td class=\"l\">%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
				cls, sh.Partition, sh.Pending, sh.QueueDepth, sh.Admitted, sh.Overloads, sh.Killed)
		}
		b.WriteString("</table></section>\n")
	}

	// Bids and faults.
	b.WriteString("<section><h2>Bids and faults</h2><div class=\"kv\">\n")
	fmt.Fprintf(&b, "<div><b>accepted</b>%d</div><div><b>rejected</b>%d</div>"+
		"<div><b>timeout</b>%d</div><div><b>duplicate</b>%d</div>",
		o.Bids.Accepted, o.Bids.Rejected, o.Bids.Timeout, o.Bids.Duplicate)
	fmt.Fprintf(&b, "<div><b>winner unreachable</b>%d</div><div><b>winner evicted</b>%d</div>"+
		"<div><b>loser unnotified</b>%d</div><div><b>partition lost</b>%d</div>"+
		"<div><b>worker retries</b>%d</div>",
		o.Faults.WinnerUnreachable, o.Faults.WinnerEvicted,
		o.Faults.LoserUnnotified, o.Faults.PartitionLost, o.WorkerRetries)
	b.WriteString("</div></section>\n")

	// Latency histogram.
	s.writeLatency(&b)

	// Recovery panel.
	if o.Store != nil {
		st := o.Store
		b.WriteString("<section><h2>Durable state</h2><div class=\"kv\">\n")
		fmt.Fprintf(&b, "<div><b>journaled spent</b>%s</div>", ftoa(st.BudgetSpent))
		fmt.Fprintf(&b, "<div><b>releases</b>%d</div><div><b>refusals</b>%d</div>", st.Releases, st.Refusals)
		fmt.Fprintf(&b, "<div><b>next round</b>%d</div><div><b>rounds completed</b>%d</div>",
			st.NextRound, st.RoundsCompleted)
		fmt.Fprintf(&b, "<div><b>total payment</b>%s</div><div><b>skills tracked</b>%d</div>",
			ftoa(st.TotalPayment), st.SkillsTracked)
		b.WriteString("</div></section>\n")
	}

	// Event ring.
	b.WriteString("<section><h2>Event ring</h2><div class=\"kv\">\n")
	fmt.Fprintf(&b, "<div><b>retained</b>%d / %d</div><div><b>observed</b>%d</div>"+
		"<div><b>dropped</b>%d</div><div><b>last seq</b>%d</div>",
		o.Events.Retained, o.Events.Capacity, o.Events.Total, o.Events.Dropped, o.Events.LastSeq)
	b.WriteString("</div></section>\n")

	pageFoot(&b, o.GeneratedUnixNs)
	return b.String()
}

// writeBurnDown embeds the epsilon burn-down chart when there is at
// least one ledger point.
func (s *Server) writeBurnDown(b *strings.Builder, bd *BudgetInfo) {
	series := s.cfg.Events.BudgetSeries()
	if len(series) == 0 {
		return
	}
	releases := make([]float64, len(series))
	spent := make([]float64, len(series))
	for i, p := range series {
		releases[i] = float64(p.Release)
		spent[i] = p.Spent
	}
	ch, err := plot.BurnDownChart("Epsilon burn-down", releases, spent, bd.Total)
	if err != nil {
		return
	}
	svg, err := ch.SVG()
	if err != nil {
		return
	}
	b.WriteString(svg)
}

// writeLatency embeds the per-round latency histogram when the metric
// has observations.
func (s *Server) writeLatency(b *strings.Builder) {
	h, ok := s.cfg.Metrics.Snapshot().Histogram("mcs_protocol_round_seconds")
	if !ok || h.Count == 0 {
		return
	}
	svg, err := plot.HistogramSVG("Round latency", "seconds (bucket upper bound)", h.Bounds, h.Counts)
	if err != nil {
		return
	}
	b.WriteString("<section><h2>Round latency</h2>")
	b.WriteString(svg)
	fmt.Fprintf(b, "<p class=\"muted\">%d rounds, %.3fs total</p></section>\n", h.Count, h.Sum)
}

// renderRounds builds the per-round drill-down page.
func (s *Server) renderRounds() string {
	resp := s.Rounds()
	o := s.Overview()
	var b strings.Builder
	pageHead(&b, "rounds · mcs-platform console")

	b.WriteString("<section><h2>Recent rounds</h2>\n")
	if len(resp.Rounds) == 0 {
		b.WriteString("<p class=\"muted\">no round lifecycle events retained yet</p>")
	} else {
		b.WriteString("<table><tr><th>round</th><th class=\"l\">status</th><th>bidders</th>" +
			"<th>winners</th><th>clearing price</th><th>reports</th><th>faults</th>" +
			"<th class=\"l\">reason</th><th>time</th></tr>\n")
		for _, r := range resp.Rounds {
			cls := ""
			switch r.Status {
			case "degraded":
				cls = ` class="warn"`
			case "failed":
				cls = ` class="bad"`
			}
			fmt.Fprintf(&b, "<tr%s><td>%d</td><td class=\"l\">%s</td><td>%d</td><td>%d</td>"+
				"<td>%s</td><td>%d</td><td>%d</td><td class=\"l\">%s</td><td>%s</td></tr>\n",
				cls, r.Round, htmlEscape(r.Status), r.Bidders, r.Winners,
				ftoa(r.ClearingPrice), r.ReportsReceived, r.Faults,
				htmlEscape(r.Reason), stamp(r.TimestampUnixNs))
		}
		b.WriteString("</table>")
	}
	b.WriteString("</section>\n")

	if resp.Latency != nil && resp.Latency.Count > 0 {
		svg, err := plot.HistogramSVG("Round latency", "seconds (bucket upper bound)",
			resp.Latency.Bounds, resp.Latency.Counts)
		if err == nil {
			b.WriteString("<section><h2>Latency distribution</h2>")
			b.WriteString(svg)
			b.WriteString("</section>\n")
		}
	}
	if o.Budget != nil {
		b.WriteString("<section><h2>Epsilon over releases</h2>")
		s.writeBurnDown(&b, o.Budget)
		b.WriteString("</section>\n")
	}

	pageFoot(&b, o.GeneratedUnixNs)
	return b.String()
}

// renderEvents builds one drill-down page of evlog events. The table
// cells carry the events' rendered field JSON — safe to show because
// the Field API already redacted anything bid-typed at emit time.
func (s *Server) renderEvents(q eventsQuery) string {
	resp := s.Events(q)
	var b strings.Builder
	pageHead(&b, "events · mcs-platform console")

	b.WriteString("<section><h2>Event log</h2>\n")
	fmt.Fprintf(&b, "<p class=\"muted\">%d retained of %d observed · %d dropped by the ring</p>\n",
		s.cfg.Events.Len(), resp.Total, resp.Dropped)
	if len(resp.Events) == 0 {
		b.WriteString("<p class=\"muted\">no events match</p>")
	} else {
		b.WriteString("<table><tr><th>seq</th><th>time</th><th class=\"l\">level</th>" +
			"<th class=\"l\">event</th><th class=\"l\">fields</th></tr>\n")
		for _, raw := range resp.Events {
			e, err := evlog.ParseEvent(raw)
			if err != nil {
				continue
			}
			cls := ""
			switch e.Level {
			case "warn":
				cls = ` class="warn"`
			case "error":
				cls = ` class="bad"`
			}
			fields := make([]string, 0, len(e.Fields))
			for _, key := range sortedKeys(e.Fields) {
				fields = append(fields, key+"="+string(e.Fields[key]))
			}
			fmt.Fprintf(&b, "<tr%s><td>%d</td><td>%s</td><td class=\"l\">%s</td>"+
				"<td class=\"l\">%s</td><td class=\"l\">%s</td></tr>\n",
				cls, e.Seq, stamp(e.TimestampUnixNs), htmlEscape(e.Level),
				htmlEscape(e.Name), htmlEscape(strings.Join(fields, " ")))
		}
		b.WriteString("</table>")
		if resp.NextBefore > 1 {
			fmt.Fprintf(&b, "<p><a href=\"/events?before=%d&amp;limit=%d\">older events →</a></p>\n",
				resp.NextBefore, q.limit)
		}
	}
	b.WriteString("</section>\n")

	pageFoot(&b, s.cfg.Clock.Now().UnixNano())
	return b.String()
}
