package console

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/shard"
	"github.com/dphsrc/dphsrc/internal/store"
	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// fixture assembles a console over a deterministic synthetic platform:
// manual clock, pre-populated registry, a tail ring fed through the
// real logger, and a live accountant that has debited twice.
func fixture(t *testing.T) *Server {
	t.Helper()
	clock := telemetry.NewManualClock(time.Unix(1700000000, 0).UTC())
	reg := telemetry.NewRegistry(telemetry.WithClock(clock))
	tail := evlog.NewTailBuffer(64)
	lg := evlog.New(evlog.WithClock(clock), evlog.WithTail(tail))
	acct, err := mechanism.NewAccountant(2)
	if err != nil {
		t.Fatal(err)
	}
	acct.Instrument(reg)
	acct.ObserveEvents(lg)

	reg.Counter(`mcs_protocol_rounds_total{outcome="completed"}`, "rounds").Add(2)
	reg.Counter(`mcs_protocol_rounds_total{outcome="degraded"}`, "rounds").Add(1)
	reg.Counter(`mcs_protocol_bids_total{result="accepted"}`, "bids").Add(12)
	reg.Counter(`mcs_protocol_bids_total{result="rejected"}`, "bids").Add(3)
	reg.Counter(`mcs_protocol_bids_total{result="duplicate"}`, "bids").Add(1)
	reg.Counter(`mcs_protocol_round_faults_total{kind="winner_evicted"}`, "faults").Add(1)
	reg.Counter(`mcs_protocol_round_faults_total{kind="partition_lost"}`, "faults").Add(2)
	reg.Counter("mcs_protocol_quorum_failures_total", "quorum").Inc()
	reg.Counter(`mcs_protocol_worker_retries_total{kind="dial"}`, "retries").Add(4)
	reg.Gauge("mcs_protocol_connections_active", "conns").Set(5)
	h := reg.Histogram("mcs_protocol_round_seconds", "latency", []float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	lg.Info("round.complete",
		evlog.Int("round", 0), evlog.Int("bidders", 6), evlog.Int("winners", 2),
		evlog.Aggregate("clearing_price", 1.25),
		evlog.Int("reports_received", 2), evlog.Int("faults", 0))
	if err := acct.Spend(0.5); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	lg.Warn("round.degraded", evlog.Int("round", 1), evlog.String("reason", "quorum_not_met"))
	lg.Info("round.complete",
		evlog.Int("round", 2), evlog.Int("bidders", 5), evlog.Int("winners", 1),
		evlog.Aggregate("clearing_price", 0.75),
		evlog.Int("reports_received", 1), evlog.Int("faults", 1))
	if err := acct.Spend(0.5); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{
		Status:     func() Status { return Status{Round: 3, Phase: "idle"} },
		Metrics:    reg,
		Events:     tail,
		Accountant: acct,
		ShardStats: func() []shard.PartitionStats {
			return []shard.PartitionStats{
				{Partition: 0, QueueDepth: 64, BatchSize: 32, Admitted: 9},
				{Partition: 1, QueueDepth: 64, BatchSize: 32, Admitted: 3, Overloads: 1},
			}
		},
		StoreState: func() store.State {
			return store.State{
				Budget: store.BudgetState{Spent: 1, Releases: 2},
				Skills: map[string]float64{"A": 0.9, "B": 0.8},
				Campaign: store.CampaignState{
					NextRound:    3,
					TotalPayment: 41.5,
					Completed:    []store.CompletedRound{{Round: 0}, {Round: 2}},
				},
			}
		},
		Clock:       clock,
		RoundsTotal: 4,
	})
	clock.Advance(time.Second)
	return srv
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content-type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func TestOverviewJSONRoundTrip(t *testing.T) {
	srv := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var o Overview
	getJSON(t, ts, "/api/overview", &o)
	if o.Schema != SchemaV1 {
		t.Errorf("schema = %q", o.Schema)
	}
	if o.Status != (Status{Round: 3, Phase: "idle"}) {
		t.Errorf("status = %+v", o.Status)
	}
	if o.Rounds != (RoundCounts{Completed: 2, Degraded: 1}) {
		t.Errorf("rounds = %+v", o.Rounds)
	}
	if o.Bids != (BidCounts{Accepted: 12, Rejected: 3, Duplicate: 1}) {
		t.Errorf("bids = %+v", o.Bids)
	}
	if o.Faults != (FaultCounts{WinnerEvicted: 1, PartitionLost: 2, Total: 3}) {
		t.Errorf("faults = %+v", o.Faults)
	}
	if o.QuorumFailures != 1 || o.WorkerRetries != 4 || o.ConnectionsActive != 5 {
		t.Errorf("quorum/retries/conns = %d/%d/%v", o.QuorumFailures, o.WorkerRetries, o.ConnectionsActive)
	}
	if o.RoundsTotal != 4 || o.UptimeSeconds != 1 {
		t.Errorf("rounds_total/uptime = %d/%v", o.RoundsTotal, o.UptimeSeconds)
	}
	if o.Budget == nil {
		t.Fatal("budget panel missing")
	}
	b := o.Budget
	if !b.Metered || b.Total != 2 || b.Spent != 1 || b.Remaining != 1 || b.Releases != 2 {
		t.Errorf("budget = %+v", b)
	}
	// The acceptance-criteria identity: the live accountant and the
	// event-fold ledger agree bit-for-bit through the JSON round trip.
	if b.Ledger.CumulativeEpsilon != b.Spent {
		t.Errorf("ledger fold %v != accountant spent %v", b.Ledger.CumulativeEpsilon, b.Spent)
	}
	if b.Ledger.Releases != 2 || b.Ledger.Total != 2 {
		t.Errorf("ledger = %+v", b.Ledger)
	}
	if len(o.Shards) != 2 || o.Shards[1].Overloads != 1 {
		t.Errorf("shards = %+v", o.Shards)
	}
	// 5 events: 2 complete + 1 degraded + 2 budget.spend.
	if o.Events.Retained != 5 || o.Events.Total != 5 || o.Events.LastSeq != 5 || o.Events.Capacity != 64 {
		t.Errorf("events = %+v", o.Events)
	}
	if o.Store == nil || o.Store.RoundsCompleted != 2 || o.Store.SkillsTracked != 2 || o.Store.TotalPayment != 41.5 {
		t.Errorf("store = %+v", o.Store)
	}
}

func TestRoundsJSONRoundTrip(t *testing.T) {
	srv := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var r RoundsResponse
	getJSON(t, ts, "/api/rounds", &r)
	if r.Schema != SchemaV1 {
		t.Errorf("schema = %q", r.Schema)
	}
	if len(r.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3 lifecycle events", len(r.Rounds))
	}
	// Oldest first.
	if r.Rounds[0].Round != 0 || r.Rounds[0].Status != "completed" || r.Rounds[0].ClearingPrice != 1.25 {
		t.Errorf("round[0] = %+v", r.Rounds[0])
	}
	if r.Rounds[1].Round != 1 || r.Rounds[1].Status != "degraded" || r.Rounds[1].Reason != "quorum_not_met" {
		t.Errorf("round[1] = %+v", r.Rounds[1])
	}
	if r.Rounds[2].Round != 2 || r.Rounds[2].Bidders != 5 || r.Rounds[2].Faults != 1 {
		t.Errorf("round[2] = %+v", r.Rounds[2])
	}
	if r.Latency == nil || r.Latency.Count != 3 || len(r.Latency.Counts) != 4 {
		t.Errorf("latency = %+v", r.Latency)
	}
	if len(r.Budget) != 2 || r.Budget[1] != (evlog.BudgetPoint{Release: 2, Spent: 1, Total: 2}) {
		t.Errorf("budget series = %+v", r.Budget)
	}
}

func TestEventsPagingAndFilters(t *testing.T) {
	srv := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Page 1: newest two of the five events.
	var page EventsResponse
	getJSON(t, ts, "/api/events?limit=2", &page)
	if len(page.Events) != 2 || page.LastSeq != 5 || page.Total != 5 {
		t.Fatalf("page = %+v", page)
	}
	first, err := evlog.ParseEvent(page.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 5 {
		t.Errorf("first event seq = %d, want newest (5)", first.Seq)
	}
	if page.NextBefore != 4 {
		t.Errorf("next_before = %d, want 4", page.NextBefore)
	}

	// Follow the cursor to drain the rest.
	var rest EventsResponse
	getJSON(t, ts, fmt.Sprintf("/api/events?before=%d&limit=100", page.NextBefore), &rest)
	if len(rest.Events) != 3 {
		t.Errorf("rest = %d events, want 3", len(rest.Events))
	}

	// Level filter: only the degraded round is warn-or-worse.
	var warns EventsResponse
	getJSON(t, ts, "/api/events?level=warn", &warns)
	if len(warns.Events) != 1 {
		t.Fatalf("warn filter = %d events, want 1", len(warns.Events))
	}
	e, err := evlog.ParseEvent(warns.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "round.degraded" {
		t.Errorf("warn event = %q", e.Name)
	}

	// Name filter: "round." prefix selects the lifecycle only.
	var rounds EventsResponse
	getJSON(t, ts, "/api/events?event=round.", &rounds)
	if len(rounds.Events) != 3 {
		t.Errorf("round. filter = %d events, want 3", len(rounds.Events))
	}
	var exact EventsResponse
	getJSON(t, ts, "/api/events?event=budget.spend", &exact)
	if len(exact.Events) != 2 {
		t.Errorf("budget.spend filter = %d events, want 2", len(exact.Events))
	}
}

func TestEventsBadParamsRejected(t *testing.T) {
	srv := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{
		"/api/events?limit=0",
		"/api/events?limit=nope",
		"/api/events?before=-1",
		"/api/events?level=verbose",
		"/events?limit=-5",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTMLPagesRender(t *testing.T) {
	srv := fixture(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/", "/rounds", "/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
			t.Errorf("GET %s: content-type %q", path, ct)
		}
		page := string(body)
		if !strings.Contains(page, "mcs-platform console") || !strings.Contains(page, "</html>") {
			t.Errorf("GET %s: not a console page", path)
		}
		if path != "/events" && !strings.Contains(page, "<svg") {
			t.Errorf("GET %s: expected an inline SVG chart", path)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

// TestEmptyConsoleServes: a console over nothing at all (every Config
// field zero) still answers every route — panels degrade, not the
// process.
func TestEmptyConsoleServes(t *testing.T) {
	srv := New(Config{Clock: telemetry.NewManualClock(time.Unix(0, 0))})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/", "/rounds", "/events", "/api/overview", "/api/rounds", "/api/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s on empty console: status %d", path, resp.StatusCode)
		}
	}
	var o Overview
	getJSON(t, ts, "/api/overview", &o)
	if o.Budget != nil || o.Store != nil || len(o.Shards) != 0 {
		t.Errorf("empty console grew panels: %+v", o)
	}
}

// TestNoBidValueInAnyResponse is the runtime half of the privacy
// posture: a worker's bid enters the platform's event stream only via
// Redacted/Aggregate wrappers, so a sentinel bid value that the grid
// can never produce must not appear in ANY byte served by the console.
func TestNoBidValueInAnyResponse(t *testing.T) {
	const sentinel = "13.37" // off-grid bid cost; nothing else renders it
	clock := telemetry.NewManualClock(time.Unix(1700000000, 0))
	reg := telemetry.NewRegistry(telemetry.WithClock(clock))
	tail := evlog.NewTailBuffer(16)
	lg := evlog.New(evlog.WithClock(clock), evlog.WithTail(tail))

	// The protocol's bid-handshake events: the bid value itself is only
	// representable as a Redacted marker — the Field API has no escape
	// hatch that would carry 13.37 here.
	lg.Info("bid.accepted", evlog.String("worker", "W1"), evlog.Redacted("bid"))
	lg.Info("bid.accepted", evlog.String("worker", "W2"), evlog.Redacted("bid"))
	lg.Info("round.complete",
		evlog.Int("round", 0), evlog.Int("bidders", 2), evlog.Int("winners", 1),
		evlog.Aggregate("clearing_price", 21),
		evlog.Int("reports_received", 1), evlog.Int("faults", 0))

	srv := New(Config{Metrics: reg, Events: tail, Clock: clock})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/", "/rounds", "/events", "/api/overview", "/api/rounds", "/api/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(body), sentinel) {
			t.Errorf("GET %s leaked the sentinel bid value", path)
		}
	}

	// The redaction marker itself must survive to the events view — the
	// proof that the bid field was present and scrubbed, not omitted.
	var ev EventsResponse
	getJSON(t, ts, "/api/events?event=bid.accepted", &ev)
	if len(ev.Events) != 2 {
		t.Fatalf("bid events = %d, want 2", len(ev.Events))
	}
	for _, raw := range ev.Events {
		e, err := evlog.ParseEvent(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Redacted("bid") {
			t.Errorf("bid field not a redaction marker: %s", raw)
		}
	}
}
