// Package console is the live operator dashboard for a running
// mcs-platform: one HTTP surface aggregating the metrics registry, the
// evlog tail ring, the DP-budget ledger, and the shard coordinator
// into an HTML overview with server-side SVG charts, plus JSON
// endpoints (/api/overview, /api/rounds, /api/events) that back the
// HTML and feed tests and tooling the same aggregates.
//
// Privacy posture: the console never touches a bid value. Everything
// it serves is derived from metric counters, the accountant's DP
// ledger, shard occupancy counts, and evlog lines — and evlog lines
// are redaction-safe by construction (bid-typed values only enter them
// through Redacted/Aggregate wrappers). mcs-lint's dp-leak analyzer
// runs over this package with the same sink rules as the protocol, so
// a regression that routed a raw bid here would be machine-caught.
package console

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/dphsrc/dphsrc/internal/mechanism"
	"github.com/dphsrc/dphsrc/internal/shard"
	"github.com/dphsrc/dphsrc/internal/store"
	"github.com/dphsrc/dphsrc/internal/telemetry"
	"github.com/dphsrc/dphsrc/internal/telemetry/evlog"
)

// SchemaV1 tags every JSON response.
const SchemaV1 = "mcs-console/v1"

// Status is the platform's live round/phase position as the console
// consumes it. The protocol layer publishes protocol.RoundStatus; the
// cmd wiring adapts it so this package needs no protocol import.
type Status struct {
	Round int    `json:"round"`
	Phase string `json:"phase"`
}

// Config wires the console to a running platform's observability
// surfaces. Every field is optional: absent sources render as absent
// panels, so the console degrades instead of failing.
type Config struct {
	// Status reports the live round/phase position.
	Status func() Status
	// Metrics is the platform's registry, read via Snapshot.
	Metrics *telemetry.Registry
	// Events is the evlog tail ring backing the drill-down view and
	// the ledger fold.
	Events *evlog.TailBuffer
	// Accountant is the live DP accountant; its Spent() is compared
	// against the tail's ledger fold on the overview.
	Accountant *mechanism.Accountant
	// ShardStats reports per-partition stats; nil when unsharded.
	ShardStats func() []shard.PartitionStats
	// StoreState reads the durable store's recovered view for the
	// recovery panel; nil when the platform runs stateless.
	StoreState func() store.State
	// Clock stamps responses; defaults to telemetry.WallClock().
	Clock telemetry.Clock
	// RoundsTotal is the campaign length (0 = unbounded), and
	// StartRound the first round index, echoed on the overview.
	RoundsTotal int
	StartRound  int
}

// Server renders the console. Create with New, mount via Handler.
type Server struct {
	cfg   Config
	start time.Time
}

// New returns a console over the configured sources and exports the
// tail ring's drop counter into the metrics registry.
func New(cfg Config) *Server {
	if cfg.Clock == nil {
		cfg.Clock = telemetry.WallClock()
	}
	cfg.Events.Instrument(cfg.Metrics)
	return &Server{cfg: cfg, start: cfg.Clock.Now()}
}

// Handler returns the console's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleOverviewHTML)
	mux.HandleFunc("/rounds", s.handleRoundsHTML)
	mux.HandleFunc("/events", s.handleEventsHTML)
	mux.HandleFunc("/api/overview", s.handleAPIOverview)
	mux.HandleFunc("/api/rounds", s.handleAPIRounds)
	mux.HandleFunc("/api/events", s.handleAPIEvents)
	return mux
}

// --- JSON response types -----------------------------------------------

// RoundCounts are the lifetime round outcome totals.
type RoundCounts struct {
	Completed int64 `json:"completed"`
	Degraded  int64 `json:"degraded"`
	Failed    int64 `json:"failed"`
}

// BidCounts are the lifetime bid admission totals.
type BidCounts struct {
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Timeout   int64 `json:"timeout"`
	Duplicate int64 `json:"duplicate"`
}

// FaultCounts are the lifetime tolerated-fault totals.
type FaultCounts struct {
	WinnerUnreachable int64 `json:"winner_unreachable"`
	WinnerEvicted     int64 `json:"winner_evicted"`
	LoserUnnotified   int64 `json:"loser_unnotified"`
	PartitionLost     int64 `json:"partition_lost"`
	Total             int64 `json:"total"`
}

// LedgerInfo is the tail ring's incremental FoldBudget reconstruction.
type LedgerInfo struct {
	Releases          int     `json:"releases"`
	Refusals          int     `json:"refusals"`
	CumulativeEpsilon float64 `json:"cumulative_epsilon"`
	FinalSpent        float64 `json:"final_spent"`
	Total             float64 `json:"total"`
}

// BudgetInfo pairs the live accountant with the event-fold ledger; the
// two cumulative figures must agree bit-for-bit on a healthy platform.
type BudgetInfo struct {
	Metered   bool       `json:"metered"`
	Total     float64    `json:"total"`
	Spent     float64    `json:"spent"`
	Remaining float64    `json:"remaining"`
	Releases  int64      `json:"releases"`
	Refusals  int64      `json:"refusals"`
	Ledger    LedgerInfo `json:"ledger"`
}

// EventsInfo describes the tail ring's occupancy.
type EventsInfo struct {
	Retained int   `json:"retained"`
	Capacity int   `json:"capacity"`
	Dropped  int64 `json:"dropped"`
	Total    int64 `json:"total"`
	LastSeq  int64 `json:"last_seq"`
}

// StoreInfo is the durable store's recovered view.
type StoreInfo struct {
	BudgetSpent     float64 `json:"budget_spent"`
	Releases        int64   `json:"releases"`
	Refusals        int64   `json:"refusals"`
	NextRound       int     `json:"next_round"`
	RoundsCompleted int     `json:"rounds_completed"`
	TotalPayment    float64 `json:"total_payment"`
	SkillsTracked   int     `json:"skills_tracked"`
}

// Overview is the /api/overview response.
type Overview struct {
	Schema            string                 `json:"schema"`
	GeneratedUnixNs   int64                  `json:"generated_unix_ns"`
	UptimeSeconds     float64                `json:"uptime_seconds"`
	Status            Status                 `json:"status"`
	RoundsTotal       int                    `json:"rounds_total,omitempty"`
	StartRound        int                    `json:"start_round,omitempty"`
	Rounds            RoundCounts            `json:"rounds"`
	Bids              BidCounts              `json:"bids"`
	Faults            FaultCounts            `json:"faults"`
	QuorumFailures    int64                  `json:"quorum_failures"`
	WorkerRetries     int64                  `json:"worker_retries"`
	ConnectionsActive float64                `json:"connections_active"`
	Budget            *BudgetInfo            `json:"budget,omitempty"`
	Shards            []shard.PartitionStats `json:"shards,omitempty"`
	Events            EventsInfo             `json:"events"`
	Store             *StoreInfo             `json:"store,omitempty"`
}

// HistogramInfo is a histogram series as served on /api/rounds.
type HistogramInfo struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// RoundSummary is one round lifecycle event from the tail ring.
type RoundSummary struct {
	Round           int     `json:"round"`
	Status          string  `json:"status"`
	Seq             int64   `json:"seq"`
	TimestampUnixNs int64   `json:"ts_unix_ns"`
	Bidders         int     `json:"bidders,omitempty"`
	Winners         int     `json:"winners,omitempty"`
	ClearingPrice   float64 `json:"clearing_price,omitempty"`
	ReportsReceived int     `json:"reports_received,omitempty"`
	Faults          int     `json:"faults,omitempty"`
	Reason          string  `json:"reason,omitempty"`
}

// RoundsResponse is the /api/rounds response. Rounds holds the
// lifecycle events still retained by the tail ring, oldest first.
type RoundsResponse struct {
	Schema  string              `json:"schema"`
	Rounds  []RoundSummary      `json:"rounds"`
	Latency *HistogramInfo      `json:"latency_seconds,omitempty"`
	Budget  []evlog.BudgetPoint `json:"budget_series,omitempty"`
}

// EventsResponse is the /api/events response: raw retained evlog lines
// (newest first), spliced verbatim — they are valid JSON and
// redaction-safe by construction.
type EventsResponse struct {
	Schema     string            `json:"schema"`
	LastSeq    int64             `json:"last_seq"`
	Dropped    int64             `json:"dropped"`
	Total      int64             `json:"total"`
	NextBefore int64             `json:"next_before,omitempty"`
	Events     []json.RawMessage `json:"events"`
}

// --- aggregation --------------------------------------------------------

// Overview assembles the /api/overview aggregate.
func (s *Server) Overview() Overview {
	snap := s.cfg.Metrics.Snapshot()
	now := s.cfg.Clock.Now()
	o := Overview{
		Schema:          SchemaV1,
		GeneratedUnixNs: now.UnixNano(),
		UptimeSeconds:   now.Sub(s.start).Seconds(),
		RoundsTotal:     s.cfg.RoundsTotal,
		StartRound:      s.cfg.StartRound,
		Rounds: RoundCounts{
			Completed: snap.Counter(`mcs_protocol_rounds_total{outcome="completed"}`),
			Degraded:  snap.Counter(`mcs_protocol_rounds_total{outcome="degraded"}`),
			Failed:    snap.Counter(`mcs_protocol_rounds_total{outcome="failed"}`),
		},
		Bids: BidCounts{
			Accepted:  snap.Counter(`mcs_protocol_bids_total{result="accepted"}`),
			Rejected:  snap.Counter(`mcs_protocol_bids_total{result="rejected"}`),
			Timeout:   snap.Counter(`mcs_protocol_bids_total{result="timeout"}`),
			Duplicate: snap.Counter(`mcs_protocol_bids_total{result="duplicate"}`),
		},
		Faults: FaultCounts{
			WinnerUnreachable: snap.Counter(`mcs_protocol_round_faults_total{kind="winner_unreachable"}`),
			WinnerEvicted:     snap.Counter(`mcs_protocol_round_faults_total{kind="winner_evicted"}`),
			LoserUnnotified:   snap.Counter(`mcs_protocol_round_faults_total{kind="loser_unnotified"}`),
			PartitionLost:     snap.Counter(`mcs_protocol_round_faults_total{kind="partition_lost"}`),
			Total:             snap.CounterFamily("mcs_protocol_round_faults_total"),
		},
		QuorumFailures:    snap.Counter("mcs_protocol_quorum_failures_total"),
		WorkerRetries:     snap.CounterFamily("mcs_protocol_worker_retries_total"),
		ConnectionsActive: snap.Gauge("mcs_protocol_connections_active"),
	}
	if s.cfg.Status != nil {
		o.Status = s.cfg.Status()
	}
	if s.cfg.ShardStats != nil {
		o.Shards = s.cfg.ShardStats()
	}
	tail := s.cfg.Events
	o.Events = EventsInfo{
		Retained: tail.Len(),
		Capacity: tail.Cap(),
		Dropped:  tail.Dropped(),
		Total:    tail.Total(),
		LastSeq:  tail.LastSeq(),
	}
	led := tail.Ledger()
	if s.cfg.Accountant != nil || led.Releases > 0 || led.Refusals > 0 {
		b := BudgetInfo{Ledger: LedgerInfo{
			Releases:          led.Releases,
			Refusals:          led.Refusals,
			CumulativeEpsilon: led.CumulativeEpsilon,
			FinalSpent:        led.FinalSpent,
			Total:             led.Total,
		}}
		if a := s.cfg.Accountant; a != nil {
			alg := a.Ledger()
			b.Metered = true
			b.Total = a.Total()
			b.Spent = a.Spent()
			b.Remaining = a.Remaining()
			b.Releases = alg.Releases
			b.Refusals = alg.Refusals
		} else {
			b.Total = led.Total
			b.Spent = led.FinalSpent
			b.Releases = int64(led.Releases)
			b.Refusals = int64(led.Refusals)
		}
		o.Budget = &b
	}
	if s.cfg.StoreState != nil {
		st := s.cfg.StoreState()
		o.Store = &StoreInfo{
			BudgetSpent:     st.Budget.Spent,
			Releases:        st.Budget.Releases,
			Refusals:        st.Budget.Refusals,
			NextRound:       st.Campaign.NextRound,
			RoundsCompleted: len(st.Campaign.Completed),
			TotalPayment:    st.Campaign.TotalPayment,
			SkillsTracked:   len(st.Skills),
		}
	}
	return o
}

// Rounds assembles the /api/rounds aggregate from the tail ring's
// retained round lifecycle events plus the latency histogram and the
// ledger's burn-down series.
func (s *Server) Rounds() RoundsResponse {
	resp := RoundsResponse{Schema: SchemaV1}
	entries := s.cfg.Events.Tail(0, 0)
	// Tail is newest-first; walk backwards for oldest-first rounds.
	for i := len(entries) - 1; i >= 0; i-- {
		e, err := evlog.ParseEvent(entries[i].Raw)
		if err != nil {
			continue
		}
		var status string
		switch e.Name {
		case "round.complete":
			status = "completed"
		case "round.degraded":
			status = "degraded"
		case "round.failed":
			status = "failed"
		default:
			continue
		}
		sum := RoundSummary{Status: status, Seq: e.Seq, TimestampUnixNs: e.TimestampUnixNs}
		if v, ok := e.Int("round"); ok {
			sum.Round = int(v)
		}
		if v, ok := e.Int("bidders"); ok {
			sum.Bidders = int(v)
		}
		if v, ok := e.Int("winners"); ok {
			sum.Winners = int(v)
		}
		if v, ok := e.Float("clearing_price"); ok {
			sum.ClearingPrice = v
		}
		if v, ok := e.Int("reports_received"); ok {
			sum.ReportsReceived = int(v)
		}
		if v, ok := e.Int("faults"); ok {
			sum.Faults = int(v)
		}
		if v, ok := e.Str("reason"); ok {
			sum.Reason = v
		}
		resp.Rounds = append(resp.Rounds, sum)
	}
	if h, ok := s.cfg.Metrics.Snapshot().Histogram("mcs_protocol_round_seconds"); ok {
		resp.Latency = &HistogramInfo{Bounds: h.Bounds, Counts: h.Counts, Count: h.Count, Sum: h.Sum}
	}
	resp.Budget = s.cfg.Events.BudgetSeries()
	return resp
}

// eventsQuery are the parsed /events paging parameters.
type eventsQuery struct {
	before int64
	limit  int
	level  evlog.Level
	filter bool // level filter active
	event  string
}

// defaultEventsLimit and maxEventsLimit bound one drill-down page.
const (
	defaultEventsLimit = 100
	maxEventsLimit     = 500
)

// parseEventsQuery validates the paging parameters shared by /events
// and /api/events.
func parseEventsQuery(r *http.Request) (eventsQuery, error) {
	q := eventsQuery{limit: defaultEventsLimit}
	vals := r.URL.Query()
	if raw := vals.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return q, fmt.Errorf("limit %q must be a positive integer", raw)
		}
		q.limit = n
	}
	if q.limit > maxEventsLimit {
		q.limit = maxEventsLimit
	}
	if raw := vals.Get("before"); raw != "" {
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || n < 1 {
			return q, fmt.Errorf("before %q must be a positive sequence number", raw)
		}
		q.before = n
	}
	if raw := vals.Get("level"); raw != "" {
		lv, ok := evlog.ParseLevel(raw)
		if !ok {
			return q, fmt.Errorf("unknown level %q", raw)
		}
		q.level = lv
		q.filter = true
	}
	q.event = vals.Get("event")
	return q, nil
}

// Events assembles one page of retained evlog lines, newest first.
// Unfiltered pages splice the stored bytes verbatim; level/event
// filters parse each candidate line first.
func (s *Server) Events(q eventsQuery) EventsResponse {
	tail := s.cfg.Events
	resp := EventsResponse{
		Schema:  SchemaV1,
		LastSeq: tail.LastSeq(),
		Dropped: tail.Dropped(),
		Total:   tail.Total(),
		Events:  []json.RawMessage{},
	}
	cursor := q.before
	for len(resp.Events) < q.limit {
		batch := tail.Tail(cursor, q.limit-len(resp.Events))
		if len(batch) == 0 {
			break
		}
		for _, entry := range batch {
			cursor = entry.Seq
			if q.filter || q.event != "" {
				e, err := evlog.ParseEvent(entry.Raw)
				if err != nil {
					continue
				}
				if q.event != "" && !matchEvent(e.Name, q.event) {
					continue
				}
				if q.filter {
					lv, ok := evlog.ParseLevel(e.Level)
					if !ok || lv < q.level {
						continue
					}
				}
			}
			resp.Events = append(resp.Events, json.RawMessage(entry.Raw))
			resp.NextBefore = entry.Seq
			if len(resp.Events) == q.limit {
				break
			}
		}
	}
	return resp
}

// matchEvent matches an event name against a filter: exact, or prefix
// when the filter ends in '.', so "round." selects the lifecycle.
func matchEvent(name, filter string) bool {
	if filter == "" || name == filter {
		return true
	}
	if filter[len(filter)-1] == '.' && len(name) > len(filter) {
		return name[:len(filter)] == filter
	}
	return false
}

// --- HTTP handlers ------------------------------------------------------

// writeJSON encodes v; encode errors mean the client went away.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		return
	}
}

func (s *Server) handleAPIOverview(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Overview())
}

func (s *Server) handleAPIRounds(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Rounds())
}

func (s *Server) handleAPIEvents(w http.ResponseWriter, r *http.Request) {
	q, err := parseEventsQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, s.Events(q))
}

// writeHTML sends a rendered page; write errors mean the client went
// away.
func writeHTML(w http.ResponseWriter, page string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if _, err := w.Write([]byte(page)); err != nil {
		return
	}
}

func (s *Server) handleOverviewHTML(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeHTML(w, s.renderOverview())
}

func (s *Server) handleRoundsHTML(w http.ResponseWriter, r *http.Request) {
	writeHTML(w, s.renderRounds())
}

func (s *Server) handleEventsHTML(w http.ResponseWriter, r *http.Request) {
	q, err := parseEventsQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeHTML(w, s.renderEvents(q))
}
